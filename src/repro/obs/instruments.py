"""Pre-bound instrument bundles for the stream subsystem's hot paths.

The near-zero-overhead contract: an instrumented component holds
``self._obs = None`` until telemetry is attached, and every hot path
guards with one load --

    obs = self._obs
    if obs is not None:
        obs.responses.value += count

-- so the disabled cost is a single attribute check and the enabled
cost is bumps on instruments resolved *once*, here, at attach time
(never a registry lookup per batch).  Each bundle is ``__slots__``-only
and belongs to exactly one component instance; nothing in any bundle is
checkpoint state.

Metric name scheme (documented in ``benchmarks/README.md``):

* ``repro_stream_*``   -- :class:`~repro.stream.engine.StreamEngine`
* ``repro_parallel_*`` -- the multiprocess dispatcher (``worker`` label)
* ``repro_fabric_*``   -- the socket transport: heartbeat RTT, outbox
  depth, lost workers, requeued messages (``worker`` label)
* ``repro_feed_*``     -- passive-feed drains and suppressions
* ``repro_store_*``    -- :class:`ObservationStore` backends (``backend``
  label)
* ``repro_checkpoint_*`` -- serialize/restore/write latency and size
* ``repro_serve_*``    -- the query daemon (``endpoint`` label) and
  snapshot publication
* ``repro_repl_*``     -- checkpoint replication: segments shipped and
  applied, follower lag, resyncs
"""

from __future__ import annotations

import threading

from .registry import LATENCY_BUCKETS, SIZE_BUCKETS


class EngineInstruments:
    """StreamEngine metrics: ingest throughput, batch shape, day closes."""

    __slots__ = (
        "telemetry",
        "responses",
        "batches",
        "batch_rows",
        "materialize_seconds",
        "days_closed",
        "rotation_events",
        "changed_pairs",
        "stable_pairs",
        "current_day",
    )

    def __init__(self, telemetry) -> None:
        registry = telemetry.registry
        self.telemetry = telemetry
        self.responses = registry.counter(
            "repro_stream_responses_total", "Observations ingested"
        )
        self.batches = registry.counter(
            "repro_stream_batches_total", "Ingest batches/chunks applied"
        )
        self.batch_rows = registry.histogram(
            "repro_stream_batch_rows", "Rows per ingest batch/chunk", SIZE_BUCKETS
        )
        self.materialize_seconds = registry.histogram(
            "repro_stream_materialize_seconds",
            "Columnar buffer fold-to-shard latency",
        )
        self.days_closed = registry.counter(
            "repro_stream_days_closed_total", "Scanned day pairs diffed"
        )
        self.rotation_events = registry.counter(
            "repro_stream_rotation_events_total",
            "Day closes that detected rotation",
        )
        self.changed_pairs = registry.counter(
            "repro_stream_changed_pairs_total", "Changed pairs across day closes"
        )
        self.stable_pairs = registry.counter(
            "repro_stream_stable_pairs_total", "Stable pairs across day closes"
        )
        self.current_day = registry.gauge(
            "repro_stream_current_day", "Newest day seen on the stream"
        )

    def observe_batch(self, rows: int) -> None:
        self.responses.value += rows
        self.batches.value += 1
        self.batch_rows.observe(rows)

    def day_opened(self, day: int) -> None:
        self.current_day.value = day
        self.telemetry.emit("day_open", day=day)

    def day_closed(self, day: int, changed: int, stable: int) -> None:
        self.days_closed.value += 1
        self.changed_pairs.value += changed
        self.stable_pairs.value += stable
        self.telemetry.emit("day_close", day=day, changed=changed, stable=stable)
        if changed:
            self.rotation_events.value += 1
            self.telemetry.emit("rotation_detected", day=day, changed=changed)


class ParallelInstruments(EngineInstruments):
    """Dispatcher metrics, on top of the shared engine vocabulary.

    Per-worker dispatch counters carry a ``worker`` label; wait time is
    the dispatcher blocking on worker replies (day-pair collections,
    state merges, barriers) -- dispatcher-side idle, the number that
    says whether workers or the feed are the bottleneck.
    """

    __slots__ = (
        "dispatch_rows",
        "dispatch_chunks",
        "chunk_rows",
        "queue_depth",
        "wait_seconds",
        "merge_seconds",
        "workers_alive",
    )

    def __init__(self, telemetry, num_workers: int) -> None:
        super().__init__(telemetry)
        registry = telemetry.registry
        self.dispatch_rows = [
            registry.counter(
                "repro_parallel_dispatch_rows_total",
                "Rows shipped to each worker",
                {"worker": str(w)},
            )
            for w in range(num_workers)
        ]
        self.dispatch_chunks = [
            registry.counter(
                "repro_parallel_dispatch_chunks_total",
                "Pipe messages shipped to each worker",
                {"worker": str(w)},
            )
            for w in range(num_workers)
        ]
        self.chunk_rows = registry.histogram(
            "repro_parallel_chunk_rows", "Rows per dispatched chunk", SIZE_BUCKETS
        )
        self.queue_depth = [
            registry.gauge(
                "repro_parallel_buffer_rows",
                "Rows buffered for each worker at last flush",
                {"worker": str(w)},
            )
            for w in range(num_workers)
        ]
        self.wait_seconds = registry.histogram(
            "repro_parallel_wait_seconds",
            "Dispatcher time blocked on worker replies",
        )
        self.merge_seconds = registry.histogram(
            "repro_parallel_merge_seconds",
            "Worker-partial fold into a merged engine",
        )
        self.workers_alive = registry.gauge(
            "repro_parallel_workers", "Worker processes currently running"
        )

    def dispatched(self, worker: int, rows: int) -> None:
        self.dispatch_rows[worker].value += rows
        self.dispatch_chunks[worker].value += 1
        self.chunk_rows.observe(rows)

    def worker_joined(self, worker: int, pid: int | None) -> None:
        self.workers_alive.value += 1
        self.telemetry.emit("worker_join", worker=worker, pid=pid)

    def worker_exited(self, worker: int) -> None:
        self.workers_alive.value -= 1
        self.telemetry.emit("worker_exit", worker=worker)


class FabricInstruments:
    """Socket-transport metrics: heartbeat RTT, outbox depth, losses.

    Heartbeats land on per-channel reader threads and the monitor thread
    bumps outbox gauges, so -- like :class:`ServeInstruments` -- updates
    take a small lock.  Cadence is per-heartbeat (seconds apart), never
    per-row, so the lock is nowhere near a hot path.
    """

    __slots__ = (
        "telemetry",
        "heartbeat_seconds",
        "outbox_depth",
        "workers_lost",
        "requeued_messages",
        "_lock",
    )

    def __init__(self, telemetry, num_workers: int) -> None:
        registry = telemetry.registry
        self.telemetry = telemetry
        self.heartbeat_seconds = registry.histogram(
            "repro_fabric_heartbeat_seconds",
            "Master-to-worker heartbeat round-trip time",
            LATENCY_BUCKETS,
        )
        self.outbox_depth = [
            registry.gauge(
                "repro_fabric_outbox_frames",
                "Frames queued toward each worker at last monitor tick",
                {"worker": str(w)},
            )
            for w in range(num_workers)
        ]
        self.workers_lost = registry.counter(
            "repro_fabric_workers_lost_total",
            "Socket workers declared dead (timeout or connection loss)",
        )
        self.requeued_messages = registry.counter(
            "repro_fabric_requeued_messages_total",
            "Journaled messages replayed onto surviving workers",
        )
        self._lock = threading.Lock()

    def heartbeat(self, worker: int, seconds: float) -> None:
        with self._lock:
            self.heartbeat_seconds.observe(seconds)

    def outbox(self, worker: int, depth: int) -> None:
        with self._lock:
            if 0 <= worker < len(self.outbox_depth):
                self.outbox_depth[worker].value = depth

    def worker_lost(self, worker: int) -> None:
        with self._lock:
            self.workers_lost.value += 1
        self.telemetry.emit("fabric_worker_lost", worker=worker)

    def requeued(self, messages: int) -> None:
        with self._lock:
            self.requeued_messages.value += messages
        self.telemetry.emit("fabric_requeue", messages=messages)


class StoreInstruments:
    """ObservationStore metrics, one bundle per attached store; every
    series carries the backend name as a label."""

    __slots__ = (
        "telemetry",
        "append_rows",
        "append_seconds",
        "scan_seconds",
        "snapshot_seconds",
        "restore_seconds",
    )

    def __init__(self, telemetry, backend: str) -> None:
        registry = telemetry.registry
        labels = {"backend": backend}
        self.telemetry = telemetry
        self.append_rows = registry.counter(
            "repro_store_append_rows_total", "Rows appended", labels
        )
        self.append_seconds = registry.histogram(
            "repro_store_append_seconds", "Bulk append latency", LATENCY_BUCKETS, labels
        )
        self.scan_seconds = registry.histogram(
            "repro_store_scan_seconds", "Full column scan latency", LATENCY_BUCKETS, labels
        )
        self.snapshot_seconds = registry.histogram(
            "repro_store_snapshot_seconds",
            "Checkpoint-row snapshot latency",
            LATENCY_BUCKETS,
            labels,
        )
        self.restore_seconds = registry.histogram(
            "repro_store_restore_seconds",
            "Checkpoint-row restore latency",
            LATENCY_BUCKETS,
            labels,
        )


class FeedInstruments:
    """Passive-feed drain metrics (campaign-side)."""

    __slots__ = ("telemetry", "drained", "lagging_dropped", "dedup_suppressed")

    def __init__(self, telemetry) -> None:
        registry = telemetry.registry
        self.telemetry = telemetry
        self.drained = registry.counter(
            "repro_feed_records_total", "Passive records ingested"
        )
        self.lagging_dropped = registry.counter(
            "repro_feed_lagging_dropped_total",
            "Passive records dropped for predating the engine's day",
        )
        self.dedup_suppressed = registry.counter(
            "repro_feed_dedup_suppressed_total",
            "Repeat sightings suppressed by dedup windows",
        )


#: The serve endpoints with pre-bound request counters.
SERVE_ENDPOINTS = (
    "iid",
    "rotations",
    "profiles",
    "stats",
    "healthz",
    "metrics",
    "shutdown",
)


class ServeInstruments:
    """Query-daemon metrics: requests per endpoint, latency, snapshots.

    Unlike the ingest bundles this one is bumped from HTTP handler
    threads, so the request-side updates take a small lock -- request
    cadence is per-query, never per-row, so the lock is nowhere near a
    hot path.  Snapshot publication stays lock-free (ingest thread
    only).
    """

    __slots__ = (
        "telemetry",
        "requests",
        "request_seconds",
        "errors",
        "snapshot_version",
        "snapshot_refreshes",
        "snapshot_refresh_seconds",
        "_lock",
    )

    def __init__(self, telemetry) -> None:
        registry = telemetry.registry
        self.telemetry = telemetry
        self.requests = {
            endpoint: registry.counter(
                "repro_serve_requests_total",
                "Queries served, per endpoint",
                {"endpoint": endpoint},
            )
            for endpoint in SERVE_ENDPOINTS
        }
        self.request_seconds = registry.histogram(
            "repro_serve_request_seconds", "Query handling latency"
        )
        self.errors = registry.counter(
            "repro_serve_errors_total", "Queries answered with an error status"
        )
        self.snapshot_version = registry.gauge(
            "repro_serve_snapshot_version", "Version of the published snapshot"
        )
        self.snapshot_refreshes = registry.counter(
            "repro_serve_snapshot_refreshes_total", "Snapshots published"
        )
        self.snapshot_refresh_seconds = registry.histogram(
            "repro_serve_snapshot_refresh_seconds", "Snapshot rebuild latency"
        )
        self._lock = threading.Lock()

    def request_served(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            counter = self.requests.get(endpoint)
            if counter is not None:
                counter.value += 1
            self.request_seconds.observe(seconds)

    def request_failed(self) -> None:
        with self._lock:
            self.errors.value += 1

    def requests_total(self) -> int:
        with self._lock:
            return int(sum(c.value for c in self.requests.values()))

    def snapshot_published(self, version: int, seconds: float) -> None:
        self.snapshot_version.value = version
        self.snapshot_refreshes.value += 1
        self.snapshot_refresh_seconds.observe(seconds)


class CheckpointInstruments:
    """Checkpoint serialize/write/restore latency and size."""

    __slots__ = (
        "telemetry",
        "serialize_seconds",
        "restore_seconds",
        "write_seconds",
        "checkpoint_bytes",
        "checkpoint_delta_bytes",
        "checkpoints",
        "checkpoints_full",
        "checkpoints_delta",
    )

    def __init__(self, telemetry) -> None:
        registry = telemetry.registry
        self.telemetry = telemetry
        self.serialize_seconds = registry.histogram(
            "repro_checkpoint_serialize_seconds", "engine_state build latency"
        )
        self.restore_seconds = registry.histogram(
            "repro_checkpoint_restore_seconds", "Engine restore latency"
        )
        self.write_seconds = registry.histogram(
            "repro_checkpoint_write_seconds", "Full checkpoint write latency"
        )
        self.checkpoint_bytes = registry.gauge(
            "repro_checkpoint_bytes", "Size of the newest checkpoint"
        )
        self.checkpoint_delta_bytes = registry.gauge(
            "repro_checkpoint_delta_bytes",
            "Bytes the newest binary delta segment appended",
        )
        self.checkpoints = registry.counter(
            "repro_checkpoint_written_total", "Checkpoints written"
        )
        self.checkpoints_full = registry.counter(
            "repro_checkpoint_full_total",
            "Full checkpoints written (JSON or binary base segments)",
        )
        self.checkpoints_delta = registry.counter(
            "repro_checkpoint_delta_total", "Binary delta segments appended"
        )

    def written(
        self,
        path,
        size: int,
        day: int | None,
        seconds: float,
        kind: str = "full",
        delta_bytes: int | None = None,
        base_id: str | None = None,
        seq: int | None = None,
    ) -> None:
        """Record one checkpoint write.

        *size* is the checkpoint's full size (file bytes for binary,
        payload bytes for JSON); *delta_bytes* is the appended segment
        size when *kind* is ``"delta"``.  Binary writes carry the chain
        identity (*base_id*, *seq*) into the event payload, so a
        replication follower can spot a rebase from the event log
        alone.
        """
        self.checkpoints.value += 1
        self.checkpoint_bytes.value = size
        self.write_seconds.observe(seconds)
        if kind == "delta":
            self.checkpoints_delta.value += 1
            if delta_bytes is not None:
                self.checkpoint_delta_bytes.value = delta_bytes
        else:
            self.checkpoints_full.value += 1
        payload = {
            "path": str(path),
            "bytes": size,
            "day": day,
            "seconds": round(seconds, 6),
            "kind": kind,
        }
        if base_id is not None:
            payload["base_id"] = base_id
            payload["seq"] = seq
        self.telemetry.emit("checkpoint_written", **payload)


class ReplicationInstruments:
    """Checkpoint-replication metrics, shipper and follower sides.

    One vocabulary for both roles: a shipper bumps the shipped/
    subscriber/resync series, a follower the applied/lag/rejected
    series -- a box running both (a standby that is also relaying)
    shares one registry without name collisions.  Updates arrive from
    checkpoint-cadence and socket threads, so they take a small lock;
    nothing here is anywhere near a per-row path.
    """

    __slots__ = (
        "telemetry",
        "segments_shipped",
        "bytes_shipped",
        "subscribers",
        "resyncs",
        "segments_applied",
        "apply_seconds",
        "lag_seconds",
        "rejected",
        "reconnects",
        "_lock",
    )

    def __init__(self, telemetry) -> None:
        registry = telemetry.registry
        self.telemetry = telemetry
        self.segments_shipped = registry.counter(
            "repro_repl_segments_shipped_total",
            "Checkpoint segments streamed to followers",
        )
        self.bytes_shipped = registry.counter(
            "repro_repl_bytes_shipped_total",
            "Raw segment bytes streamed to followers",
        )
        self.subscribers = registry.gauge(
            "repro_repl_subscribers", "Followers currently subscribed"
        )
        self.resyncs = registry.counter(
            "repro_repl_resyncs_total",
            "Full-chain resyncs forced by outbox overflow",
        )
        self.segments_applied = registry.counter(
            "repro_repl_segments_applied_total",
            "Segments validated and applied by the follower",
        )
        self.apply_seconds = registry.histogram(
            "repro_repl_apply_seconds",
            "Segment validate-and-merge latency",
            LATENCY_BUCKETS,
        )
        self.lag_seconds = registry.gauge(
            "repro_repl_lag_seconds",
            "Primary-write to follower-apply delay of the newest segment",
        )
        self.rejected = registry.counter(
            "repro_repl_rejected_total",
            "Segments rejected by validation (state left untouched)",
        )
        self.reconnects = registry.counter(
            "repro_repl_reconnects_total", "Follower reconnect attempts"
        )
        self._lock = threading.Lock()

    def shipped(
        self, base_id: str, seq: int, kind: str, nbytes: int, subscribers: int
    ) -> None:
        with self._lock:
            self.segments_shipped.value += 1
            self.bytes_shipped.value += nbytes
            self.subscribers.value = subscribers
        self.telemetry.emit(
            "segment_shipped",
            base_id=base_id,
            seq=seq,
            kind=kind,
            bytes=nbytes,
            subscribers=subscribers,
        )

    def subscribers_now(self, count: int) -> None:
        with self._lock:
            self.subscribers.value = count

    def resynced(self) -> None:
        with self._lock:
            self.resyncs.value += 1

    def applied(
        self, base_id: str, seq: int, kind: str, seconds: float, lag: float
    ) -> None:
        with self._lock:
            self.segments_applied.value += 1
            self.apply_seconds.observe(seconds)
            self.lag_seconds.value = lag
        self.telemetry.emit(
            "follower_lag",
            base_id=base_id,
            seq=seq,
            kind=kind,
            lag_seconds=round(lag, 6),
        )

    def rejected_segment(self) -> None:
        with self._lock:
            self.rejected.value += 1

    def reconnected(self) -> None:
        with self._lock:
            self.reconnects.value += 1

    def promoted(self, base_id: str | None, seq: int | None, path) -> None:
        self.telemetry.emit(
            "promoted", base_id=base_id, seq=seq, path=str(path)
        )
