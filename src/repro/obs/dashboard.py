"""Live ASCII dashboard over a telemetry registry.

A terminal-friendly view of a running campaign: throughput since the
last frame, per-day progress, rotation events, worker balance, and
checkpoint cost -- everything read straight out of the metric series
the stream subsystem maintains, so the dashboard works on any engine
combination without its own plumbing.  Frames render to a string
(:meth:`Dashboard.render`) or straight to a stream (:meth:`tick`,
default stderr so piped stdout stays machine-readable).

The clock is injectable for tests; rates are computed from deltas
between frames, not cumulative averages, so a stall shows as a stall.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Callable

from .registry import MetricsRegistry

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_count(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1_000:.1f}k"
    return f"{value:,.0f}"


class Dashboard:
    """Renders registry state as a fixed-width ASCII panel."""

    def __init__(
        self,
        telemetry,
        *,
        stream: IO[str] | None = None,
        clock: Callable[[], float] = time.monotonic,
        total_days: int | None = None,
    ) -> None:
        self.registry: MetricsRegistry = telemetry.registry
        self.stream = stream if stream is not None else sys.stderr
        self.total_days = total_days
        self._clock = clock
        self._last_t: float | None = None
        self._last_responses = 0.0

    def _series(self) -> tuple[dict, dict]:
        snap = self.registry.snapshot()
        return snap["counters"], snap["gauges"]

    def render(self) -> str:
        """One frame; advances the rate window."""
        counters, gauges = self._series()
        now = self._clock()
        responses = counters.get("repro_stream_responses_total", 0)
        if self._last_t is None or now <= self._last_t:
            rate = 0.0
        else:
            # A fresh registry after a checkpoint resume restarts the
            # counter below the last frame's value; a stall is a stall,
            # never a negative rate.
            rate = max(0.0, responses - self._last_responses) / (now - self._last_t)
        self._last_t = now
        self._last_responses = responses

        day = gauges.get("repro_stream_current_day")
        days_closed = counters.get("repro_stream_days_closed_total", 0)
        rotations = counters.get("repro_stream_rotation_events_total", 0)
        changed = counters.get("repro_stream_changed_pairs_total", 0)
        passive = counters.get("repro_feed_records_total", 0)
        suppressed = counters.get("repro_feed_dedup_suppressed_total", 0)
        checkpoint_bytes = gauges.get("repro_checkpoint_bytes", 0)

        lines = [
            "+-- repro campaign " + "-" * 42 + "+",
            f"| responses {_fmt_count(responses):>8}   rate {_fmt_count(rate):>8}/s"
            f"   day {day if day is not None else '-':>5}        |",
        ]
        if self.total_days:
            done = min(days_closed, self.total_days)
            lines.append(
                f"| days      [{_bar(done / self.total_days)}]"
                f" {done:>3}/{self.total_days:<3}      |"
            )
        lines.append(
            f"| rotation  events {_fmt_count(rotations):>6}"
            f"   changed pairs {_fmt_count(changed):>8}      |"
        )
        if passive or suppressed:
            lines.append(
                f"| passive   {_fmt_count(passive):>8} in"
                f"   {_fmt_count(suppressed):>8} suppressed         |"
            )
        # Worker rows come from the registry's label tuples, not from
        # re-parsing rendered series names -- extra labels or a
        # different label order must not break the panel.
        workers = sorted(
            (dict(metric.labels).get("worker", "?"), metric.value)
            for metric in self.registry
            if metric.kind == "counter"
            and metric.name == "repro_parallel_dispatch_rows_total"
        )
        if workers:
            top = max(value for _, value in workers) or 1
            for worker, value in workers:
                lines.append(
                    f"| worker {worker:>2}  [{_bar(value / top)}]"
                    f" {_fmt_count(value):>8}     |"
                )
        if checkpoint_bytes:
            lines.append(
                f"| checkpoint {_fmt_count(checkpoint_bytes):>8} bytes"
                + " " * 29
                + "|"
            )
        serve_requests = sum(
            metric.value
            for metric in self.registry
            if metric.kind == "counter"
            and metric.name == "repro_serve_requests_total"
        )
        snapshot_version = gauges.get("repro_serve_snapshot_version")
        if serve_requests or snapshot_version:
            lines.append(
                f"| serve     {_fmt_count(serve_requests):>8} req"
                f"   snapshot v{snapshot_version or 0:<8.0f}       |"
            )
        # Replication: shipped on the primary, applied + lag on a
        # standby -- whichever side this registry observes.
        shipped = counters.get("repro_repl_segments_shipped_total", 0)
        applied = counters.get("repro_repl_segments_applied_total", 0)
        lag = gauges.get("repro_repl_lag_seconds")
        if shipped or applied or lag is not None:
            lines.append(
                f"| replicate {_fmt_count(shipped):>6} out"
                f"   {_fmt_count(applied):>6} in"
                f"   lag {lag if lag is not None else 0:>7.3f}s    |"
            )
        lines.append("+" + "-" * 60 + "+")
        return "\n".join(lines)

    def tick(self) -> None:
        """Write one frame to the stream (plus a separating newline)."""
        self.stream.write(self.render() + "\n")
        self.stream.flush()
