"""The metrics registry: counters, gauges, histograms, timing spans.

Zero-dependency and built for hot paths: instruments are plain
``__slots__`` objects whose update methods do one attribute bump (plus
a bisect for histograms), and instrumented code is expected to cache
them in a pre-bound bundle at attach time (see
:mod:`repro.obs.instruments`) so the *disabled* path is a single
``if bundle is not None`` attribute check -- no registry dict lookups,
no allocation, nothing to garbage-collect.

Identity is ``(name, labels)``: asking the registry twice for the same
instrument returns the same object, asking with a conflicting kind (or
conflicting histogram buckets) raises.  Labels are Prometheus-style
``{"backend": "sqlite"}`` pairs, normalized to a sorted tuple so
insertion order never forks identity.

Registries merge: :meth:`MetricsRegistry.merge` folds another
registry's values in (counters and histograms add, gauges take the
incoming value), which is what a multi-worker deployment uses to
aggregate per-worker partials into one exposition.

Telemetry is *execution* state, never result state: nothing in this
module is serialized into engine checkpoints, and the stream fuzz
harness pins checkpoint bytes identical with telemetry on and off.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left
from typing import Iterator

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for latencies in seconds: 100us .. 10s,
#: roughly 2.5x apart -- wide enough for anything from a single numpy
#: chunk fold to a full-corpus sqlite checkpoint.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for row/batch counts: powers of 8 up to 2M rows.
SIZE_BUCKETS = (1, 8, 64, 512, 4096, 32768, 262144, 2097152)


def _labels_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """``name{k="v",...}`` -- the snapshot/exposition series name."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count.

    Hot paths may bump :attr:`value` directly (``counter.value += n``);
    :meth:`inc` is the readable spelling for everywhere else.
    """

    __slots__ = ("name", "labels", "help", "value")
    kind = "counter"

    def __init__(self, name: str, labels=(), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    @property
    def series(self) -> str:
        return _render_name(self.name, self.labels)


class Gauge:
    """A value that goes up and down (queue depth, bytes, live workers)."""

    __slots__ = ("name", "labels", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, labels=(), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    @property
    def series(self) -> str:
        return _render_name(self.name, self.labels)


class _SpanTimer:
    """One timed region; created per ``with`` entry, so spans nest freely
    (each nesting level owns its own start timestamp)."""

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._histogram.observe(time.perf_counter() - self._t0)


class Histogram:
    """Fixed-bucket histogram: cumulative-friendly counts, sum, count.

    ``bounds`` are inclusive upper bucket edges; one implicit +Inf
    bucket catches the overflow, so ``counts`` has ``len(bounds) + 1``
    cells and :meth:`observe` costs one bisect and two adds.
    """

    __slots__ = ("name", "labels", "help", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels=(), help: str = "", buckets=LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be distinct and ascending")
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: int | float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def time(self) -> _SpanTimer:
        """A context manager that observes its wall-clock duration."""
        return _SpanTimer(self)

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper edge of the bucket holding *q*).

        Good enough for dashboards; +Inf overflow reports the largest
        finite edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    @property
    def series(self) -> str:
        return _render_name(self.name, self.labels)


class MetricsRegistry:
    """Owns every instrument; get-or-create by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        """Instruments in creation order (exposition order)."""
        return iter(self._metrics.values())

    def _get(self, cls, name, labels, help, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, key[1], help=help, **kwargs)
            return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as a {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self, name: str, help: str = "", buckets=LATENCY_BUCKETS, labels=None
    ) -> Histogram:
        histogram = self._get(Histogram, name, labels, help, buckets=buckets)
        if histogram.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return histogram

    def span(self, name: str, help: str = "", labels=None) -> _SpanTimer:
        """Time a region into the histogram *name* (latency buckets)::

            with registry.span("repro_checkpoint_write_seconds"):
                write()

        Spans nest: each ``with`` owns its own timer, so an inner span
        never steals the outer one's start time.
        """
        return self.histogram(name, help=help, labels=labels).time()

    # -- exporters ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything as plain dicts (JSON-able, no registry types).

        Histogram bucket counts are per-bucket (not cumulative); the
        trailing cell is the +Inf overflow.
        """
        counters: dict[str, int | float] = {}
        gauges: dict[str, int | float] = {}
        histograms: dict[str, dict] = {}
        for metric in self._metrics.values():
            if metric.kind == "counter":
                counters[metric.series] = metric.value
            elif metric.kind == "gauge":
                gauges[metric.series] = metric.value
            else:
                histograms[metric.series] = {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s values in: counters and histograms add, gauges
        take the incoming value (last writer wins).  Instruments missing
        here are created with *other*'s metadata."""
        for metric in other:
            labels = dict(metric.labels)
            if metric.kind == "counter":
                self.counter(metric.name, metric.help, labels).value += metric.value
            elif metric.kind == "gauge":
                self.gauge(metric.name, metric.help, labels).value = metric.value
            else:
                mine = self.histogram(
                    metric.name, metric.help, metric.bounds, labels
                )
                for i, count in enumerate(metric.counts):
                    mine.counts[i] += count
                mine.sum += metric.sum
                mine.count += metric.count
