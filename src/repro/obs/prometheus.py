"""Prometheus text-exposition rendering for a :class:`MetricsRegistry`.

Implements the text format version 0.0.4 by hand (zero dependencies):
``# HELP`` / ``# TYPE`` headers once per metric family, counters and
gauges as single samples, histograms as cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count``.  This is the wire format the
future tracker-as-a-service daemon will serve from ``/metrics``; until
then it doubles as a stable, diffable dump format (the golden test
pins it).
"""

from __future__ import annotations

from .registry import MetricsRegistry


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(pairs, extra: str = "") -> str:
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    if extra:
        inner = f"{inner},{extra}" if inner else extra
    return f"{{{inner}}}" if inner else ""


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (trailing newline)."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry:
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind in ("counter", "gauge"):
            lines.append(
                f"{metric.name}{_labels(metric.labels)}"
                f" {_format_value(metric.value)}"
            )
            continue
        cumulative = 0
        for bound, count in zip(metric.bounds, metric.counts):
            cumulative += count
            le = _labels(metric.labels, f'le="{_format_value(float(bound))}"')
            lines.append(f"{metric.name}_bucket{le} {cumulative}")
        inf = _labels(metric.labels, 'le="+Inf"')
        lines.append(f"{metric.name}_bucket{inf} {metric.count}")
        lines.append(
            f"{metric.name}_sum{_labels(metric.labels)}"
            f" {_format_value(metric.sum)}"
        )
        lines.append(
            f"{metric.name}_count{_labels(metric.labels)} {metric.count}"
        )
    return "\n".join(lines) + "\n" if lines else ""
