"""``repro.obs``: zero-dependency observability for the stream pipeline.

The package answers the operational questions the ROADMAP's multi-host
fabric and tracker-daemon shapes will ask -- responses/s, worker
balance, rotation-event rates, checkpoint cost -- without touching the
result path: telemetry is execution state only, never checkpoint
state, and the stream fuzz harness pins checkpoint bytes identical
with telemetry on and off.

The front door is :class:`Telemetry`: one metrics registry plus an
optional JSON-lines event log, handed to any combination of
``StreamEngine``, ``ParallelStreamEngine``, ``StreamingCampaign``, and
``ObservationStore.attach_telemetry``.  Components left without a
telemetry object pay one ``is not None`` check per batch -- the
overhead budget ``BENCH_stream.json``'s ``telemetry_overhead`` section
gates at <=5% even with everything enabled.

    from repro.obs import Telemetry

    telemetry = Telemetry(event_path="campaign.events.jsonl")
    campaign = StreamingCampaign(campaign, telemetry=telemetry)
    campaign.run()
    print(telemetry.prometheus())          # text exposition
    stats = telemetry.snapshot()           # plain dicts
"""

from __future__ import annotations

from pathlib import Path
from typing import IO

from .dashboard import Dashboard
from .events import EventLog, read_events
from .prometheus import render as to_prometheus
from .registry import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "Dashboard",
    "read_events",
    "to_prometheus",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]


class Telemetry:
    """One registry + one optional event log, shared by a whole run.

    *events* accepts an :class:`EventLog`, a path, or a file-like;
    ``event_path`` is the keyword spelling for the common case.  With no
    event sink, :meth:`emit` is a no-op (the registry still collects).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        events: "EventLog | str | Path | IO[str] | None" = None,
        *,
        event_path: "str | Path | None" = None,
    ) -> None:
        if events is not None and event_path is not None:
            raise ValueError("pass events or event_path, not both")
        sink = events if events is not None else event_path
        self.registry = registry if registry is not None else MetricsRegistry()
        if sink is None or isinstance(sink, EventLog):
            self.events = sink
        else:
            self.events = EventLog(sink)

    def emit(self, event: str, **payload) -> None:
        if self.events is not None:
            self.events.emit(event, **payload)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def prometheus(self) -> str:
        return to_prometheus(self.registry)

    def close(self) -> None:
        if self.events is not None:
            self.events.close()
