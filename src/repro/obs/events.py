"""JSON-lines structured event log for campaign lifecycle events.

Metrics answer *how fast*; events answer *what happened when*: a day
closing, a rotation being detected, a checkpoint landing on disk, a
worker joining or exiting.  Each event is one JSON object per line --
trivially greppable, tail-able, and replayable into any downstream
tooling -- with a stable envelope::

    {"t": 1754500000.0, "event": "day_close", ...payload}

The sink is a path (opened append, line-buffered flushes) or any
file-like with ``write``; the clock is injectable so tests can pin
timestamps.  An :class:`EventLog` is cheap enough to leave attached
permanently: one dict, one ``json.dumps``, one write per event, and
events fire at campaign cadence (days, checkpoints), never per-row.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, IO

#: The lifecycle vocabulary.  Not enforced -- ad-hoc events are fine --
#: but everything the stream subsystem emits is one of these.
KNOWN_EVENTS = (
    "campaign_start",
    "campaign_finished",
    "day_open",
    "day_close",
    "rotation_detected",
    "checkpoint_written",
    "worker_join",
    "worker_exit",
    "fabric_worker_lost",
    "fabric_requeue",
    "serve_start",
    "serve_stop",
    "segment_shipped",
    "follower_lag",
    "promoted",
)


class EventLog:
    """Append-only JSON-lines sink for lifecycle events."""

    def __init__(
        self,
        sink: str | Path | IO[str],
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if isinstance(sink, (str, Path)):
            self._file: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._clock = clock
        self.emitted = 0

    def emit(self, event: str, **payload: Any) -> None:
        record = {"t": round(self._clock(), 6), "event": event}
        record.update(payload)
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.emitted += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSON-lines event log back into dicts (testing/analysis)."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
