"""Binary radix trie over IPv6 prefixes with longest-prefix match.

One bit per level, values stored at the node where a prefix terminates.
Lookups walk at most 128 levels, remembering the deepest value seen -- the
classic routing-table structure.  Generic in its value type so both the
RIB (values: routes) and the simulator (values: providers/pools) share it.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.net.addr import ADDR_BITS, Prefix

V = TypeVar("V")

_TOP_BIT = 1 << (ADDR_BITS - 1)


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[_Node[V] | None] = [None, None]
        self.value: V | None = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Map from IPv6 prefixes to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0
        self._max_plen = 0

    def __len__(self) -> int:
        return self._size

    @property
    def max_plen(self) -> int:
        """Longest prefix length ever inserted (not lowered by removals).

        An upper bound on how specific any lookup answer can be, which
        is what callers memoizing longest-prefix-match results need: a
        cache keyed on an address's covering /P is sound iff no route is
        longer than /P.  Removals keep the bound conservative rather
        than re-scanning the trie.
        """
        return self._max_plen

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at *prefix*."""
        node = self._root
        bits = prefix.network
        for level in range(prefix.plen):
            bit = 1 if bits & (_TOP_BIT >> level) else 0
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        if prefix.plen > self._max_plen:
            self._max_plen = prefix.plen

    def exact(self, prefix: Prefix) -> V | None:
        """Value stored at exactly *prefix*, or None."""
        node = self._root
        bits = prefix.network
        for level in range(prefix.plen):
            bit = 1 if bits & (_TOP_BIT >> level) else 0
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def remove(self, prefix: Prefix) -> bool:
        """Remove the value at exactly *prefix*.  Returns True if present.

        Nodes are not physically pruned; for our workloads (build once,
        query many) the memory overhead of dead branches is irrelevant.
        """
        node = self._root
        bits = prefix.network
        for level in range(prefix.plen):
            bit = 1 if bits & (_TOP_BIT >> level) else 0
            child = node.children[bit]
            if child is None:
                return False
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True

    def longest_match(self, addr: int) -> tuple[Prefix, V] | None:
        """The most-specific inserted prefix covering *addr*, with its value."""
        node = self._root
        best: tuple[int, V] | None = None
        if node.has_value:
            best = (0, node.value)  # a default route (::/0)
        for level in range(ADDR_BITS):
            bit = 1 if addr & (_TOP_BIT >> level) else 0
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (level + 1, node.value)
        if best is None:
            return None
        plen, value = best
        return Prefix.containing(addr, plen), value

    def lookup(self, addr: int) -> V | None:
        """Value of the most-specific prefix covering *addr*, or None."""
        match = self.longest_match(addr)
        return match[1] if match else None

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """Yield all (prefix, value) pairs in lexicographic bit order."""

        def walk(node: _Node[V], depth: int, bits: int) -> Iterator[tuple[Prefix, V]]:
            if node.has_value:
                network = bits << (ADDR_BITS - depth) if depth else 0
                yield Prefix(network, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, depth + 1, (bits << 1) | bit)

        yield from walk(self._root, 0, 0)

    def covering(self, addr: int) -> Iterator[tuple[Prefix, V]]:
        """Yield every inserted prefix covering *addr*, least specific first."""
        node = self._root
        if node.has_value:
            yield Prefix(0, 0), node.value
        for level in range(ADDR_BITS):
            bit = 1 if addr & (_TOP_BIT >> level) else 0
            child = node.children[bit]
            if child is None:
                return
            node = child
            if node.has_value:
                yield Prefix.containing(addr, level + 1), node.value
