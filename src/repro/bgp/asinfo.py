"""AS registry: ASN -> operator name and country.

Backs the per-country aggregations of Table 1 and the CC column of
Table 2.  Seeded from the bundled records for the ASes the paper names;
scenario builders register their synthesized tail ASes at build time.
"""

from __future__ import annotations

from repro.data.asinfo_db import AS_RECORDS, AsRecord

UNKNOWN_NAME = "<unregistered>"
UNKNOWN_COUNTRY = "??"


class AsRegistry:
    """Registry of AS identities (name, country) keyed by ASN."""

    def __init__(self, records: tuple[AsRecord, ...] | list[AsRecord] = AS_RECORDS) -> None:
        self._records: dict[int, AsRecord] = {r.asn: r for r in records}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def register(self, asn: int, name: str, country: str) -> None:
        """Add or replace the record for *asn*."""
        if asn <= 0:
            raise ValueError(f"bad ASN: {asn}")
        if len(country) != 2:
            raise ValueError(f"country must be ISO alpha-2, got {country!r}")
        self._records[asn] = AsRecord(asn, name, country.upper())

    def get(self, asn: int) -> AsRecord | None:
        return self._records.get(asn)

    def name_of(self, asn: int) -> str:
        record = self._records.get(asn)
        return record.name if record else UNKNOWN_NAME

    def country_of(self, asn: int) -> str:
        record = self._records.get(asn)
        return record.country if record else UNKNOWN_COUNTRY

    def asns(self) -> tuple[int, ...]:
        return tuple(sorted(self._records))

    def asns_in_country(self, country: str) -> tuple[int, ...]:
        cc = country.upper()
        return tuple(sorted(a for a, r in self._records.items() if r.country == cc))

    def countries(self) -> tuple[str, ...]:
        return tuple(sorted({r.country for r in self._records.values()}))

    def describe(self, asn: int) -> str:
        record = self._records.get(asn)
        if record is None:
            return f"AS{asn} ({UNKNOWN_NAME})"
        return f"AS{asn} ({record.name}, {record.country})"
