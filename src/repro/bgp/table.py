"""Routing information base: the reproduction's Routeviews stand-in.

Section 5.3 of the paper maps each observed EUI-64 response address to its
encompassing BGP-advertised prefix (Figure 7 compares those prefix sizes
to inferred rotation pool sizes).  :class:`RoutingTable` offers exactly
that query surface, populated from the simulated providers'
advertisements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bgp.trie import PrefixTrie
from repro.net.addr import Prefix, format_addr


@dataclass(frozen=True, slots=True)
class Route:
    """One BGP advertisement: a prefix originated by an AS."""

    prefix: Prefix
    origin_asn: int

    def __str__(self) -> str:
        return f"{self.prefix} <- AS{self.origin_asn}"


# Memoization granularity for origin lookups: one cache slot per
# covering /48.  Sound while every route is /48 or shorter -- the
# longest match is then constant across a /48 -- which holds for this
# model's providers (/32 advertisements; the paper's periphery unit is
# the /48).  A more-specific insertion flips the table to uncached
# bit-walks, so correctness never depends on the workload.
_CACHE_PLEN = 48
_CACHE_SHIFT = 128 - _CACHE_PLEN
_MISS = object()


class RoutingTable:
    """A prefix -> origin-AS table with longest-match semantics.

    ``origin_of`` -- the hot query: streaming ingestion and batch
    AS-grouping both call it once per response -- memoizes its answers
    per covering /48, invalidated on every advertise/withdraw.
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie[Route] = PrefixTrie()
        self._origin_cache: dict[int, int | None] = {}

    def __len__(self) -> int:
        return len(self._trie)

    def advertise(self, prefix: Prefix, origin_asn: int) -> None:
        """Install an advertisement, replacing any same-prefix route."""
        self._trie.insert(prefix, Route(prefix, origin_asn))
        self._origin_cache.clear()

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove the route for exactly *prefix*.  True if it existed."""
        removed = self._trie.remove(prefix)
        if removed:
            self._origin_cache.clear()
        return removed

    def lookup(self, addr: int) -> Route | None:
        """Longest-match route covering *addr*, or None if unrouted."""
        match = self._trie.longest_match(addr)
        return match[1] if match else None

    def origin_of(self, addr: int) -> int | None:
        """Origin ASN for *addr*, or None if unrouted.  Memoized."""
        if self._trie.max_plen > _CACHE_PLEN:
            route = self.lookup(addr)
            return route.origin_asn if route else None
        key = addr >> _CACHE_SHIFT
        asn = self._origin_cache.get(key, _MISS)
        if asn is _MISS:
            route = self.lookup(addr)
            asn = route.origin_asn if route else None
            self._origin_cache[key] = asn
        return asn

    def bgp_prefix_of(self, addr: int) -> Prefix | None:
        """The encompassing advertised prefix for *addr* (Figure 7's x-axis)."""
        route = self.lookup(addr)
        return route.prefix if route else None

    def routes(self) -> Iterator[Route]:
        """All installed routes in prefix bit order."""
        for _prefix, route in self._trie.items():
            yield route

    def routes_of_asn(self, asn: int) -> list[Route]:
        """All routes originated by *asn*."""
        return [route for route in self.routes() if route.origin_asn == asn]

    def describe_lookup(self, addr: int) -> str:
        route = self.lookup(addr)
        if route is None:
            return f"{format_addr(addr)}: unrouted"
        return f"{format_addr(addr)}: {route}"
