"""BGP substrate: longest-prefix matching and a Routeviews-style RIB.

The paper maps every observed response address to its covering
BGP-advertised prefix and origin AS using Routeviews data (Section 5.3,
Figure 7, Table 2).  This subpackage provides the same capability over the
simulated providers' advertisements: a binary radix trie with
longest-prefix match, a routing information base built on it, and an AS
registry carrying operator names and country codes.
"""

from repro.bgp.asinfo import AsRegistry
from repro.bgp.table import Route, RoutingTable
from repro.bgp.trie import PrefixTrie

__all__ = ["AsRegistry", "PrefixTrie", "Route", "RoutingTable"]
