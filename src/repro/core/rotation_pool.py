"""Algorithm 2: inferring rotation pool sizes.

Same skeleton as Algorithm 1, different input: instead of the targets
that elicited each EUI-64 IID, it measures how far each IID's *response
addresses* travelled across the whole campaign -- the maximum numeric
distance between any two /64 periphery prefixes carrying that IID.  The
per-AS estimate is again the median over IIDs.

An IID seen in only one /64 yields a /64 "pool" -- the non-rotation
signal that half the paper's ASes exhibit (Figure 7).  The paper also
notes the inherent bias: devices observed for less than a full traversal
of their pool make the pool look smaller than it is; campaign length
bounds what is observable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.records import ObservationStore, ProbeObservation
from repro.net.addr import IID_BITS
from repro.util import median

MIN_POOL_PLEN = 16
MAX_POOL_PLEN = 64


def pool_bits(response_net64s: list[int]) -> float:
    """Travel-distance estimate (in bits) from one IID's response /64s."""
    if not response_net64s:
        raise ValueError("no responses for this IID")
    spread = max(response_net64s) - min(response_net64s)
    if spread <= 0:
        return 0.0
    return math.log2(spread)


def pool_plen_from_bits(bits: float) -> int:
    plen = IID_BITS - round(bits)
    return max(MIN_POOL_PLEN, min(MAX_POOL_PLEN, plen))


def infer_rotation_pool_plen(responses_by_iid: dict[int, list[int]]) -> int:
    """Algorithm 2 verbatim: median per-EUI travel -> one AS-level plen."""
    if not responses_by_iid:
        raise ValueError("no EUI-64 observations to infer from")
    sizes = [
        pool_bits([r >> IID_BITS for r in responses])
        for responses in responses_by_iid.values()
        if responses
    ]
    if not sizes:
        raise ValueError("no usable response lists")
    return pool_plen_from_bits(median(sizes))


@dataclass
class RotationPoolInference:
    """Per-AS rotation pool inference with per-IID detail retained."""

    asn: int
    per_iid_plen: dict[int, int] = field(default_factory=dict)
    inferred_plen: int = MAX_POOL_PLEN

    @classmethod
    def from_observations(
        cls, asn: int, observations: list[ProbeObservation]
    ) -> RotationPoolInference:
        responses_by_iid: dict[int, list[int]] = {}
        for observation in observations:
            if not observation.is_eui64:
                continue
            responses_by_iid.setdefault(observation.source_iid, []).append(
                observation.source
            )
        if not responses_by_iid:
            raise ValueError(f"AS{asn}: no EUI-64 observations")

        inference = cls(asn=asn)
        sizes = []
        for iid, responses in responses_by_iid.items():
            bits = pool_bits([r >> IID_BITS for r in responses])
            sizes.append(bits)
            inference.per_iid_plen[iid] = pool_plen_from_bits(bits)
        inference.inferred_plen = pool_plen_from_bits(median(sizes))
        return inference

    @classmethod
    def from_store(
        cls, asn: int, store: ObservationStore, origin_of
    ) -> RotationPoolInference:
        groups = store.group_eui64_by_asn(origin_of)
        if asn not in groups:
            raise ValueError(f"AS{asn}: no EUI-64 observations in store")
        return cls.from_observations(asn, groups[asn])

    @property
    def rotates(self) -> bool:
        """True if the median IID moved beyond a single /64."""
        return self.inferred_plen < MAX_POOL_PLEN
