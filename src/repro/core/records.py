"""Observation records: the attacker's complete view of the world.

A :class:`ProbeObservation` is one responsive probe -- what zmap logs.
The :class:`ObservationStore` accumulates them across scans and days and
builds the indices every analysis in the paper needs: per-IID histories,
per-day snapshots, and per-IID target maps (for Algorithm 1).

Only EUI-64 handling is special: stores classify each response source
once on insert, so analyses can iterate EUI-only views cheaply.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.addr import IID_BITS, Prefix, iid_of
from repro.net.eui64 import is_eui64_iid
from repro.net.icmpv6 import ProbeResponse
from repro.simnet.clock import day_of, hours


@dataclass(frozen=True, slots=True)
class ProbeObservation:
    """One responsive probe: the unit of all downstream inference."""

    day: int
    t_seconds: float
    target: int
    source: int

    @property
    def source_iid(self) -> int:
        return iid_of(self.source)

    @property
    def source_net64(self) -> int:
        return self.source >> IID_BITS

    @property
    def target_net64(self) -> int:
        return self.target >> IID_BITS

    @property
    def is_eui64(self) -> bool:
        return is_eui64_iid(iid_of(self.source))

    @classmethod
    def from_response(cls, response: ProbeResponse, day: int | None = None) -> ProbeObservation:
        return cls(
            day=day if day is not None else day_of(hours(response.time)),
            t_seconds=response.time,
            target=response.target,
            source=response.source,
        )


class ObservationStore:
    """Accumulates observations and serves the paper's standard queries.

    All inserts flow through :meth:`extend`, which maintains every index
    incrementally -- per-IID histories, the EUI-64 IID set, and per-day
    slices -- so batch loading and streaming ingestion share one storage
    layer with identical results.
    """

    def __init__(self) -> None:
        self._observations: list[ProbeObservation] = []
        self._by_iid: dict[int, list[ProbeObservation]] = defaultdict(list)
        self._by_day: dict[int, list[ProbeObservation]] = defaultdict(list)
        self._eui_iids: set[int] = set()

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[ProbeObservation]:
        return iter(self._observations)

    def add(self, observation: ProbeObservation) -> None:
        self.extend((observation,))

    def extend(self, observations: Iterable[ProbeObservation]) -> int:
        """Bulk insert with incremental index maintenance.

        The fast path of both batch loading (one call per scan) and
        streaming ingestion (one call per micro-batch).  Each IID is
        classified once per observation instead of once per index.
        Returns how many observations were added.
        """
        batch = observations if isinstance(observations, list) else list(observations)
        self._observations.extend(batch)
        by_iid = self._by_iid
        by_day = self._by_day
        eui_iids = self._eui_iids
        for observation in batch:
            iid = iid_of(observation.source)
            by_iid[iid].append(observation)
            by_day[observation.day].append(observation)
            if iid not in eui_iids and is_eui64_iid(iid):
                eui_iids.add(iid)
        return len(batch)

    def add_responses(
        self, responses: Iterable[ProbeResponse], day: int | None = None
    ) -> int:
        """Ingest a scan's responses; returns how many were added."""
        return self.extend(
            [ProbeObservation.from_response(response, day) for response in responses]
        )

    # -- summary counters (the Section 4/5 headline numbers) ---------------

    def unique_sources(self) -> set[int]:
        """Distinct responding addresses ("134M unique IPv6 addresses")."""
        return {o.source for o in self._observations}

    def unique_eui64_sources(self) -> set[int]:
        """Distinct EUI-64 responding addresses ("110M unique EUI-64")."""
        return {o.source for o in self._observations if o.is_eui64}

    def eui64_iids(self) -> set[int]:
        """Distinct EUI-64 IIDs ("9M distinct IIDs")."""
        return set(self._eui_iids)

    # -- per-IID histories ---------------------------------------------------

    def observations_of_iid(self, iid: int) -> list[ProbeObservation]:
        return list(self._by_iid.get(iid, ()))

    def net64s_of_iid(self, iid: int) -> set[int]:
        """Distinct /64s an IID was seen in (Figure 8's quantity)."""
        return {o.source_net64 for o in self._by_iid.get(iid, ())}

    def days_of_iid(self, iid: int) -> set[int]:
        return {o.day for o in self._by_iid.get(iid, ())}

    def eui64_histories(self) -> Iterator[tuple[int, list[ProbeObservation]]]:
        """(iid, observations) for every EUI-64 IID."""
        for iid in self._eui_iids:
            yield iid, self._by_iid[iid]

    # -- filtered views ------------------------------------------------------

    def on_day(self, day: int) -> list[ProbeObservation]:
        return list(self._by_day.get(day, ()))

    def days(self) -> list[int]:
        """Every day with at least one observation, ascending."""
        return sorted(self._by_day)

    def eui64_only(self) -> list[ProbeObservation]:
        return [o for o in self._observations if o.is_eui64]

    def in_prefix(self, prefix: Prefix) -> list[ProbeObservation]:
        """Observations whose *response source* falls inside *prefix*."""
        return [o for o in self._observations if o.source in prefix]

    def targets_of_iid_on_day(self, iid: int, day: int) -> list[int]:
        """Targets that elicited *iid* on *day* (Algorithm 1's input)."""
        return [o.target for o in self._by_iid.get(iid, ()) if o.day == day]

    def group_eui64_by_asn(self, origin_of) -> dict[int, list[ProbeObservation]]:
        """EUI-64 observations grouped by origin AS of the response.

        *origin_of* is typically ``RoutingTable.origin_of``; unrouted
        responses group under ASN 0.
        """
        groups: dict[int, list[ProbeObservation]] = defaultdict(list)
        for observation in self._observations:
            if not observation.is_eui64:
                continue
            asn = origin_of(observation.source) or 0
            groups[asn].append(observation)
        return dict(groups)
