"""Observation records: the attacker's complete view of the world.

A :class:`ProbeObservation` is one responsive probe -- what zmap logs.
The :class:`ObservationStore` accumulates them across scans and days and
serves every query the paper's analyses need: per-IID histories,
per-day snapshots, and per-IID target maps (for Algorithm 1).

Since the storage redesign the store is a thin facade over a pluggable
:class:`~repro.store.backend.StoreBackend` (see :mod:`repro.store`):
the corpus travels as :class:`~repro.store.batch.ColumnBatch` flat
columns, backends swap between native column storage, the classic
object layout, and an append-only sqlite file, and checkpoint bytes are
identical whichever backend holds the rows.  The historical API --
``ObservationStore()``, ``add``/``extend``, iteration yielding
:class:`ProbeObservation` -- is preserved verbatim on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.net.addr import IID_BITS, Prefix, iid_of
from repro.net.eui64 import is_eui64_iid
from repro.net.icmpv6 import ProbeResponse
from repro.simnet.clock import day_of, hours

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.backend import StoreBackend, StoreStats
    from repro.store.batch import ColumnBatch


@dataclass(frozen=True, slots=True)
class ProbeObservation:
    """One responsive probe: the unit of all downstream inference."""

    day: int
    t_seconds: float
    target: int
    source: int

    @property
    def source_iid(self) -> int:
        return iid_of(self.source)

    @property
    def source_net64(self) -> int:
        return self.source >> IID_BITS

    @property
    def target_net64(self) -> int:
        return self.target >> IID_BITS

    @property
    def is_eui64(self) -> bool:
        return is_eui64_iid(iid_of(self.source))

    @classmethod
    def from_response(cls, response: ProbeResponse, day: int | None = None) -> ProbeObservation:
        return cls(
            day=day if day is not None else day_of(hours(response.time)),
            t_seconds=response.time,
            target=response.target,
            source=response.source,
        )


class ObservationStore:
    """Facade over a pluggable backend; the single insert choke point.

    All inserts still flow through :meth:`extend` (or its columnar twin
    :meth:`extend_columns`); single-observation :meth:`add` calls batch
    through a small pending buffer so the per-response streaming path
    no longer pays a one-element bulk insert each time.  Every read
    drains the buffer first, so queries always see the full stream.

    *backend* picks the storage layout -- an instance, a registered
    name (``"object"`` / ``"columnar"`` / ``"sqlite"``), or ``None``
    for the environment-governed default (columnar under the ``[fast]``
    install, object on stdlib-only, ``$REPRO_STORE_BACKEND`` to force).
    """

    #: Single ``add`` calls buffered before one bulk backend append.
    ADD_BUFFER_ROWS = 512

    def __init__(self, backend: "StoreBackend | str | None" = None) -> None:
        if backend is None or isinstance(backend, str):
            from repro.store import make_backend

            backend = make_backend(backend)
        self.backend = backend
        self._pending: list[ProbeObservation] = []
        # Telemetry bundle (repro.obs): execution state only, never
        # serialized; None keeps every path at one attribute check.
        self._obs = None

    def attach_telemetry(self, telemetry) -> None:
        """Label this store's latency/row metrics with its backend name."""
        from repro.obs.instruments import StoreInstruments

        name = getattr(self.backend, "name", type(self.backend).__name__)
        self._obs = StoreInstruments(telemetry, name)

    def __len__(self) -> int:
        return self.backend.rows + len(self._pending)

    def __iter__(self) -> Iterator[ProbeObservation]:
        self._flush()
        for chunk in self.backend.scan_observations():
            yield from chunk

    def _flush(self) -> None:
        """Drain the ``add`` buffer into the backend (order-preserving)."""
        if self._pending:
            pending, self._pending = self._pending, []
            obs = self._obs
            if obs is None:
                self.backend.append_observations(pending)
            else:
                with obs.append_seconds.time():
                    self.backend.append_observations(pending)
                obs.append_rows.value += len(pending)

    def add(self, observation: ProbeObservation) -> None:
        """Insert one observation (buffered; see :attr:`ADD_BUFFER_ROWS`)."""
        self._pending.append(observation)
        if len(self._pending) >= self.ADD_BUFFER_ROWS:
            self._flush()

    def extend(self, observations: Iterable[ProbeObservation]) -> int:
        """Bulk insert; the fast path of batch loading and streaming.

        Returns how many observations were added.
        """
        batch = observations if isinstance(observations, list) else list(observations)
        self._flush()
        obs = self._obs
        if obs is None:
            return self.backend.append_observations(batch)
        with obs.append_seconds.time():
            added = self.backend.append_observations(batch)
        obs.append_rows.value += added
        return added

    def extend_columns(self, batch: "ColumnBatch") -> int:
        """Bulk insert a :class:`ColumnBatch`; zero conversion on
        column-native backends.  Returns rows added."""
        self._flush()
        obs = self._obs
        if obs is None:
            return self.backend.append_columns(batch)
        with obs.append_seconds.time():
            added = self.backend.append_columns(batch)
        obs.append_rows.value += added
        return added

    def add_responses(
        self, responses: Iterable[ProbeResponse], day: int | None = None
    ) -> int:
        """Ingest a scan's responses; returns how many were added."""
        if getattr(self.backend, "prefers_columns", True):
            from repro.store.batch import ColumnBatch

            return self.extend_columns(ColumnBatch.from_responses(responses, day))
        return self.extend(
            [ProbeObservation.from_response(response, day) for response in responses]
        )

    # -- column views (the streaming engines' hand-off) ---------------------

    def scan_columns(self, chunk_rows: int | None = None) -> "Iterator[ColumnBatch]":
        """The whole corpus as bounded column chunks, insertion order."""
        self._flush()
        if chunk_rows is None:
            chunks = self.backend.scan_columns()
        else:
            chunks = self.backend.scan_columns(chunk_rows)
        obs = self._obs
        if obs is None:
            return chunks
        return self._timed_scan(chunks, obs)

    @staticmethod
    def _timed_scan(chunks, obs) -> "Iterator[ColumnBatch]":
        """Scan passthrough that times each chunk fetch (lazy backends
        do their I/O inside ``next``, so per-chunk timing is the truth)."""
        while True:
            with obs.scan_seconds.time():
                chunk = next(chunks, None)
            if chunk is None:
                return
            yield chunk

    def day_slice(self, day: int) -> "ColumnBatch":
        """Columns of every observation on *day*, insertion order."""
        self._flush()
        return self.backend.day_slice(day)

    def iid_history(self, iid: int) -> "ColumnBatch":
        """Columns of every observation sourced by *iid*, insertion order."""
        self._flush()
        return self.backend.iid_history(iid)

    def stats(self) -> "StoreStats":
        self._flush()
        return self.backend.stats()

    # -- checkpoint rows -----------------------------------------------------

    def snapshot_rows(self) -> list[list]:
        """The canonical checkpoint rows (backend-independent bytes)."""
        self._flush()
        obs = self._obs
        if obs is None:
            return self.backend.snapshot()
        with obs.snapshot_seconds.time():
            return self.backend.snapshot()

    def snapshot_columns(self, start_row: int = 0) -> "ColumnBatch":
        """Checkpoint columns from *start_row* on (insertion order).

        The binary checkpoint writer's currency: the same rows
        :meth:`snapshot_rows` would emit, as one :class:`ColumnBatch` --
        column-native backends serve it without building row lists, and
        *start_row* lets delta checkpoints fetch only the appended tail.
        """
        self._flush()
        fast = getattr(self.backend, "snapshot_columns", None)
        obs = self._obs
        if obs is None:
            if fast is not None:
                return fast(start_row)
            return self._scan_snapshot_columns(start_row)
        with obs.snapshot_seconds.time():
            if fast is not None:
                return fast(start_row)
            return self._scan_snapshot_columns(start_row)

    def _scan_snapshot_columns(self, start_row: int) -> "ColumnBatch":
        """Generic backend fallback: chunked scan, skipping *start_row* rows."""
        from repro.store.batch import ColumnBatch

        out = ColumnBatch()
        skip = start_row
        for chunk in self.backend.scan_columns():
            if skip >= len(chunk):
                skip -= len(chunk)
                continue
            out.extend(chunk.slice(skip) if skip else chunk)
            skip = 0
        return out

    def restore_rows(self, rows: list[list]) -> int:
        """Load checkpoint rows (incremental on disk-backed stores)."""
        self._flush()
        obs = self._obs
        if obs is None:
            return self.backend.restore(rows)
        with obs.restore_seconds.time():
            return self.backend.restore(rows)

    def close(self) -> None:
        """Flush and release backend resources (files, connections)."""
        self._flush()
        self.backend.close()

    # -- summary counters (the Section 4/5 headline numbers) ---------------

    def unique_sources(self) -> set[int]:
        """Distinct responding addresses ("134M unique IPv6 addresses")."""
        self._flush()
        return self.backend.unique_sources()

    def unique_eui64_sources(self) -> set[int]:
        """Distinct EUI-64 responding addresses ("110M unique EUI-64")."""
        self._flush()
        return self.backend.unique_eui64_sources()

    def eui64_iids(self) -> set[int]:
        """Distinct EUI-64 IIDs ("9M distinct IIDs")."""
        self._flush()
        return self.backend.eui_iids()

    # -- per-IID histories ---------------------------------------------------

    def observations_of_iid(self, iid: int) -> list[ProbeObservation]:
        self._flush()
        fast = getattr(self.backend, "iid_observations", None)
        if fast is not None:
            return fast(iid)
        return self.backend.iid_history(iid).observations()

    def net64s_of_iid(self, iid: int) -> set[int]:
        """Distinct /64s an IID was seen in (Figure 8's quantity)."""
        self._flush()
        fast = getattr(self.backend, "iid_observations", None)
        if fast is not None:
            return {o.source >> IID_BITS for o in fast(iid)}
        return set(self.backend.iid_history(iid).src_hi)

    def days_of_iid(self, iid: int) -> set[int]:
        self._flush()
        fast = getattr(self.backend, "iid_observations", None)
        if fast is not None:
            return {o.day for o in fast(iid)}
        return set(self.backend.iid_history(iid).day)

    def eui64_histories(self) -> Iterator[tuple[int, list[ProbeObservation]]]:
        """(iid, observations) for every EUI-64 IID."""
        self._flush()
        for iid in self.backend.eui_iids():
            yield iid, self.observations_of_iid(iid)

    # -- filtered views ------------------------------------------------------

    def on_day(self, day: int) -> list[ProbeObservation]:
        self._flush()
        fast = getattr(self.backend, "day_observations", None)
        if fast is not None:
            return fast(day)
        return self.backend.day_slice(day).observations()

    def days(self) -> list[int]:
        """Every day with at least one observation, ascending."""
        self._flush()
        return self.backend.days()

    def eui64_only(self) -> list[ProbeObservation]:
        return [o for o in self if o.is_eui64]

    def in_prefix(self, prefix: Prefix) -> list[ProbeObservation]:
        """Observations whose *response source* falls inside *prefix*."""
        return [o for o in self if o.source in prefix]

    def targets_of_iid_on_day(self, iid: int, day: int) -> list[int]:
        """Targets that elicited *iid* on *day* (Algorithm 1's input)."""
        history = self.iid_history(iid)
        return [
            (hi << 64) | lo
            for d, hi, lo in zip(history.day, history.tgt_hi, history.tgt_lo)
            if d == day
        ]

    def group_eui64_by_asn(self, origin_of) -> dict[int, list[ProbeObservation]]:
        """EUI-64 observations grouped by origin AS of the response.

        *origin_of* is typically ``RoutingTable.origin_of``; unrouted
        responses group under ASN 0.
        """
        groups: dict[int, list[ProbeObservation]] = {}
        for observation in self:
            if not observation.is_eui64:
                continue
            asn = origin_of(observation.source) or 0
            group = groups.get(asn)
            if group is None:
                group = groups[asn] = []
            group.append(observation)
        return groups
