"""Section 9 extension: abuse blocking under prefix rotation.

The paper's closing observation: "The IPv4 paradigm of denying or
rate-limiting a single address or range of addresses is ineffective when
client prefixes may rotate daily."  This module quantifies that, and
evaluates the defensive flip-side of the tracking attack: blocking by
*CPE identity* (the EUI-64 IID, re-resolved daily with the tracker's
method) instead of by address.

Three policies over a simulated abuse scenario:

* ``prefix`` -- block the /N containing the abusive source, IPv4-style,
* ``iid`` -- block the household by its CPE's EUI-64 IID, re-locating it
  as prefixes rotate (requires the paper's probing capability), and
* ``asn`` -- block the whole origin AS (the blunt instrument).

Metrics per policy: abusive-flow block rate and innocent collateral.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.correlator import Flow, FlowCorrelator
from repro.net.addr import Prefix
from repro.simnet.internet import SimInternet


class BlockPolicy(enum.Enum):
    PREFIX = "prefix"
    IID = "iid"
    ASN = "asn"


@dataclass
class BlocklistOutcome:
    """Effectiveness of one policy over one flow log."""

    policy: BlockPolicy
    blocked_abusive: int = 0
    missed_abusive: int = 0
    blocked_innocent: int = 0
    passed_innocent: int = 0
    probes_sent: int = 0

    @property
    def block_rate(self) -> float:
        total = self.blocked_abusive + self.missed_abusive
        if total == 0:
            raise ValueError("no abusive flows to score")
        return self.blocked_abusive / total

    @property
    def collateral_rate(self) -> float:
        total = self.blocked_innocent + self.passed_innocent
        if total == 0:
            raise ValueError("no innocent flows to score")
        return self.blocked_innocent / total


@dataclass
class AbuseScenario:
    """Flows labelled abusive (by household) plus the learning split.

    The defender observes ``training`` flows with abuse labels, builds a
    blocklist, then filters ``evaluation`` flows (later days, after
    rotations).
    """

    training: list[Flow] = field(default_factory=list)
    evaluation: list[Flow] = field(default_factory=list)
    abusive_households: set[int] = field(default_factory=set)

    def is_abusive(self, flow: Flow) -> bool:
        return flow.household in self.abusive_households


class BlocklistEvaluator:
    """Builds and scores blocklists under each policy."""

    def __init__(
        self, internet: SimInternet, block_plen: int = 64, seed: int = 0
    ) -> None:
        if not 16 <= block_plen <= 128:
            raise ValueError(f"block_plen out of range: {block_plen}")
        self.internet = internet
        self.block_plen = block_plen
        self.correlator = FlowCorrelator(internet, seed=seed)

    def evaluate(self, scenario: AbuseScenario, policy: BlockPolicy) -> BlocklistOutcome:
        outcome = BlocklistOutcome(policy=policy)
        blocked_prefixes: set[Prefix] = set()
        blocked_iids: set[int] = set()
        blocked_asns: set[int] = set()

        for index, flow in enumerate(scenario.training):
            if not scenario.is_abusive(flow):
                continue
            if policy is BlockPolicy.PREFIX:
                blocked_prefixes.add(Prefix.containing(flow.source, self.block_plen))
            elif policy is BlockPolicy.ASN:
                asn = self.internet.rib.origin_of(flow.source)
                if asn is not None:
                    blocked_asns.add(asn)
            else:
                iid, sent = self.correlator.identify_flow(flow, index)
                outcome.probes_sent += sent
                if iid is not None:
                    blocked_iids.add(iid)

        for index, flow in enumerate(scenario.evaluation):
            blocked = self._is_blocked(
                flow, index, policy, blocked_prefixes, blocked_iids, blocked_asns,
                outcome,
            )
            if scenario.is_abusive(flow):
                if blocked:
                    outcome.blocked_abusive += 1
                else:
                    outcome.missed_abusive += 1
            else:
                if blocked:
                    outcome.blocked_innocent += 1
                else:
                    outcome.passed_innocent += 1
        return outcome

    def _is_blocked(
        self,
        flow: Flow,
        index: int,
        policy: BlockPolicy,
        prefixes: set[Prefix],
        iids: set[int],
        asns: set[int],
        outcome: BlocklistOutcome,
    ) -> bool:
        if policy is BlockPolicy.PREFIX:
            return Prefix.containing(flow.source, self.block_plen) in prefixes
        if policy is BlockPolicy.ASN:
            return self.internet.rib.origin_of(flow.source) in asns
        iid, sent = self.correlator.identify_flow(flow, index ^ 0x5A5A)
        outcome.probes_sent += sent
        return iid is not None and iid in iids
