"""Section 5: the daily measurement campaign.

The paper probed 844M addresses daily for 44 days -- the same targets in
the same order (same zmap seed) at the same time each day.  The campaign
class reproduces that discipline at configurable scale: a fixed target
list (one probe per ``probe_plen`` block of every tracked /48), one scan
per day at ``scan_hour``, all responses accumulated in one
:class:`ObservationStore` keyed by day.

An hourly mode provides the Figure 10 workload (one sweep of selected
/48s per hour across several days).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.records import ObservationStore, ProbeObservation
from repro.net.addr import Prefix
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, ScanStream, Zmap6
from repro.simnet.clock import HOURS_PER_DAY, seconds
from repro.simnet.internet import SimInternet


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign parameters (defaults mirror the paper where scale allows)."""

    days: int = 44
    start_day: int = 2  # the discovery pipeline occupies days 0-1
    scan_hour: float = 12.0  # daily scan start, hours after midnight
    probe_plen: int = 56
    seed: int = 0
    rate_pps: float = 10_000.0

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if not 0.0 <= self.scan_hour < HOURS_PER_DAY:
            raise ValueError("scan_hour must be within a day")


@dataclass
class CampaignResult:
    """The campaign's observation corpus plus accounting."""

    store: ObservationStore = field(default_factory=ObservationStore)
    probes_sent: int = 0
    days_run: int = 0
    targets_per_day: int = 0

    def summary(self) -> dict[str, int]:
        """Section 5's headline counters (scaled analogues)."""
        return {
            "probes_sent": self.probes_sent,
            "days": self.days_run,
            "targets_per_day": self.targets_per_day,
            "responses": len(self.store),
            "unique_addresses": len(self.store.unique_sources()),
            "unique_eui64_addresses": len(self.store.unique_eui64_sources()),
            "unique_eui64_iids": len(self.store.eui64_iids()),
        }


class Campaign:
    """Daily same-seed probing of a fixed /48 population."""

    def __init__(
        self,
        internet: SimInternet,
        prefixes48: list[Prefix],
        config: CampaignConfig | None = None,
        plen_overrides: dict[Prefix, int] | None = None,
    ) -> None:
        """*plen_overrides* sets a finer probe granularity for specific
        /48s -- the Section 6 move of letting the allocation-size
        inference drive target generation (a /60-delegation /48 probed
        per /56 misses 15/16 of its devices)."""
        if not prefixes48:
            raise ValueError("campaign needs at least one /48")
        for prefix in prefixes48:
            if prefix.plen != 48:
                raise ValueError(f"campaign prefixes must be /48s, got {prefix}")
        self.internet = internet
        self.prefixes48 = sorted(prefixes48, key=lambda p: p.network)
        self.config = config or CampaignConfig()
        self.plen_overrides = dict(plen_overrides or {})
        for prefix, plen in self.plen_overrides.items():
            if not 48 <= plen <= 64:
                raise ValueError(f"override plen /{plen} for {prefix} out of range")
        self._targets = self._build_targets()

    def _build_targets(self) -> list[int]:
        """The fixed target list: identical every day, like the paper's."""
        rng = random.Random(self.config.seed ^ 0xCA37)
        targets = []
        for prefix in self.prefixes48:
            plen = self.plen_overrides.get(prefix, self.config.probe_plen)
            targets.extend(one_target_per_subnet(prefix, plen, rng))
        return targets

    @property
    def targets(self) -> list[int]:
        return list(self._targets)

    def day_schedule(self) -> list[tuple[int, float]]:
        """``(day, scan start in seconds)`` for every campaign day."""
        config = self.config
        return [
            (
                config.start_day + offset,
                seconds((config.start_day + offset) * HOURS_PER_DAY + config.scan_hour),
            )
            for offset in range(config.days)
        ]

    def iter_day_streams(
        self, start_offset: int = 0
    ) -> Iterator[tuple[int, ScanStream]]:
        """One lazy :class:`ScanStream` per remaining campaign day.

        *start_offset* skips already-processed days, the resume hook for
        checkpointed streaming campaigns.
        """
        config = self.config
        scanner = Zmap6(
            self.internet, ScanConfig(rate_pps=config.rate_pps, seed=config.seed)
        )
        for day, start in self.day_schedule()[start_offset:]:
            yield day, scanner.stream(self._targets, start_seconds=start)

    def run(self) -> CampaignResult:
        """The full multi-day campaign (batch form of :meth:`run_streaming`)."""
        return self.run_streaming()

    def run_streaming(
        self,
        consumer: Callable[[ProbeObservation], None] | None = None,
        result: CampaignResult | None = None,
        start_offset: int = 0,
        max_days: int | None = None,
        on_day_complete: Callable[[int], None] | None = None,
    ) -> CampaignResult:
        """Single-pass campaign: responses are handed to *consumer* as
        they arrive and bulk-applied to the store once per scan.

        Produces a result identical to batch mode -- both paths share the
        scanner's probe loop and the store's :meth:`~repro.core.records.
        ObservationStore.extend` fast path.  This is the one
        correctness-critical ingest loop; every streaming driver
        (including :class:`repro.stream.campaign.StreamingCampaign`)
        runs through it.  Pass a partially filled *result* plus
        *start_offset* to resume an interrupted campaign; *max_days*
        bounds how many days this call processes, and *on_day_complete*
        fires after each day's accounting (the checkpoint hook).
        """
        if result is None:
            result = CampaignResult(targets_per_day=len(self._targets))
        from_response = ProbeObservation.from_response
        processed = 0
        for day, stream in self.iter_day_streams(start_offset):
            if max_days is not None and processed >= max_days:
                break
            observations = []
            append = observations.append
            if consumer is None:
                for response in stream:
                    append(from_response(response, day))
            else:
                for response in stream:
                    observation = from_response(response, day)
                    append(observation)
                    consumer(observation)
            result.store.extend(observations)
            result.probes_sent += stream.probes_sent
            result.days_run += 1
            processed += 1
            if on_day_complete is not None:
                on_day_complete(day)
        return result

    def run_hourly(
        self, days: int, start_day: int | None = None
    ) -> CampaignResult:
        """One sweep per hour for *days* days (the Figure 10 workload)."""
        if days <= 0:
            raise ValueError("days must be positive")
        config = self.config
        first_day = config.start_day if start_day is None else start_day
        result = CampaignResult(targets_per_day=len(self._targets) * 24)
        scanner = Zmap6(
            self.internet, ScanConfig(rate_pps=config.rate_pps, seed=config.seed)
        )
        for hour_index in range(days * 24):
            day = first_day + hour_index // 24
            start = seconds(first_day * HOURS_PER_DAY + hour_index)
            scan = scanner.scan(self._targets, start_seconds=start)
            result.probes_sent += scan.probes_sent
            result.store.add_responses(scan.responses, day=day)
            result.days_run = hour_index // 24 + 1
        return result
