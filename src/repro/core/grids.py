"""Figures 3 & 6: per-/48 allocation grids.

Probing one random-IID target in every /64 of a /48 and plotting which
source answered produces the paper's 256x256 maps: the y-axis is the 7th
byte of the target, the x-axis the 8th byte, each distinct responding
address a distinct color, black where nothing answered.  Horizontal
bands of one color reveal the delegation size: a /56 delegation spans a
full row; a /60 a quarter-row; /64 delegations are single pixels.

:class:`AllocationGrid` holds the raw 256x256 response matrix, infers
the dominant allocation size from run lengths, and renders an ASCII
thumbnail for terminals.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.net.addr import Prefix
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, Zmap6

GRID_DIM = 256


@dataclass
class AllocationGrid:
    """The response matrix for one probed /48."""

    prefix: Prefix
    # cells[row][col] = responding source address, or None
    cells: list[list[int | None]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.prefix.plen != 48:
            raise ValueError(f"grids are defined over /48s, got {self.prefix}")
        if not self.cells:
            self.cells = [[None] * GRID_DIM for _ in range(GRID_DIM)]

    @property
    def responsive_fraction(self) -> float:
        answered = sum(1 for row in self.cells for cell in row if cell is not None)
        return answered / (GRID_DIM * GRID_DIM)

    def distinct_sources(self) -> set[int]:
        return {cell for row in self.cells for cell in row if cell is not None}

    def set_response(self, target: int, source: int) -> None:
        """Record that probing *target* drew a reply from *source*."""
        index = self.prefix.subnet_index(target, 64)
        row, col = divmod(index, GRID_DIM)
        self.cells[row][col] = source

    def run_lengths(self) -> list[int]:
        """Lengths of maximal same-source runs along rows, row-major.

        A /56 delegation appears as a 256-long run, /60 as 16, /64 as 1.
        Runs are measured within rows because delegations of /56 or
        smaller never straddle a row boundary.
        """
        runs: list[int] = []
        for row in self.cells:
            current: int | None = None
            length = 0
            for cell in row:
                if cell is not None and cell == current:
                    length += 1
                    continue
                if current is not None:
                    runs.append(length)
                current, length = cell, 1 if cell is not None else 0
            if current is not None:
                runs.append(length)
        return runs

    def infer_allocation_plen(self) -> int:
        """Dominant delegation size from the modal run length."""
        runs = self.run_lengths()
        if not runs:
            raise ValueError(f"{self.prefix}: no responsive cells")
        modal_length, _count = Counter(runs).most_common(1)[0]
        bits = max(0, modal_length - 1).bit_length()  # 256->8, 16->4, 1->0
        return 64 - bits

    def render_ascii(self, downsample: int = 4) -> str:
        """A terminal thumbnail: one glyph per *downsample*^2 cells.

        Distinct sources map to distinct glyph classes (by hash); '.'
        marks empty regions.  With the default downsample the 256x256
        grid prints as 64 lines of 64 characters.
        """
        if GRID_DIM % downsample:
            raise ValueError(f"downsample must divide {GRID_DIM}")
        glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        lines = []
        for row_block in range(0, GRID_DIM, downsample):
            line = []
            for col_block in range(0, GRID_DIM, downsample):
                block_sources = [
                    self.cells[r][c]
                    for r in range(row_block, row_block + downsample)
                    for c in range(col_block, col_block + downsample)
                    if self.cells[r][c] is not None
                ]
                if not block_sources:
                    line.append(".")
                else:
                    dominant = Counter(block_sources).most_common(1)[0][0]
                    line.append(glyphs[dominant % len(glyphs)])
            lines.append("".join(line))
        return "\n".join(lines)


def scan_allocation_grid(
    internet,
    prefix: Prefix,
    t_seconds: float = 0.0,
    seed: int = 0,
    rate_pps: float = 10_000.0,
) -> AllocationGrid:
    """Run the Figure 3 workload: probe every /64 of *prefix* once.

    65,536 probes at the paper's 10 kpps -- about 6.5 simulated seconds,
    well under any rotation interval, so the grid is a consistent
    snapshot.
    """
    rng = random.Random(seed)
    targets = one_target_per_subnet(prefix, 64, rng)
    scanner = Zmap6(internet, ScanConfig(seed=seed, rate_pps=rate_pps))
    result = scanner.scan(targets, start_seconds=t_seconds)

    grid = AllocationGrid(prefix=prefix)
    for response in result.responses:
        grid.set_response(response.target, response.source)
    return grid
