"""Figures 8-10: per-IID trajectories and pool density over time.

Three views over campaign observations:

* the number of distinct /64s each EUI-64 IID appeared in (Figure 8's
  CDF -- ~70% above one /64 means most devices demonstrably rotate),
* an IID's day-by-day /64 (or /48) trajectory (Figure 9's staircase:
  AS8881 delegations increment daily and wrap modulo the /46 pool), and
* the fraction of a /48's probed blocks answering with EUI-64 addresses,
  per observation hour (Figure 10's early-morning density migration).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.records import ObservationStore
from repro.net.addr import Prefix
from repro.simnet.clock import hours


def distinct_net64_counts(store: ObservationStore) -> dict[int, int]:
    """IID -> number of distinct /64s observed (Figure 8's raw data)."""
    return {iid: len(store.net64s_of_iid(iid)) for iid in store.eui64_iids()}


def fraction_multi_prefix(store: ObservationStore) -> float:
    """Fraction of EUI-64 IIDs seen in more than one /64 (paper: ~70%)."""
    counts = distinct_net64_counts(store)
    if not counts:
        raise ValueError("no EUI-64 IIDs in store")
    return sum(1 for c in counts.values() if c > 1) / len(counts)


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One day's observed position of an IID."""

    day: int
    net64: int


def iid_trajectory(store: ObservationStore, iid: int) -> list[TrajectoryPoint]:
    """Day-ordered positions of one IID (Figure 9's lines).

    When an IID is observed several times in one day the first
    observation wins; campaign scans probe each location once per day,
    so duplicates only arise from overlapping experiments.
    """
    by_day: dict[int, int] = {}
    for observation in store.observations_of_iid(iid):
        by_day.setdefault(observation.day, observation.source_net64)
    return [TrajectoryPoint(day, net64) for day, net64 in sorted(by_day.items())]


def trajectory_increments(points: list[TrajectoryPoint]) -> list[int]:
    """Per-day /64-number deltas along a trajectory (wrap excluded).

    For an AS8881-style rotator this is a constant positive step; the
    single large negative delta at the pool boundary is the modulo wrap.
    """
    deltas = []
    for prev, nxt in zip(points, points[1:]):
        day_gap = nxt.day - prev.day
        if day_gap <= 0:
            continue
        deltas.append((nxt.net64 - prev.net64) // day_gap)
    return deltas


@dataclass
class DensitySeries:
    """Per-/48 EUI-occupancy fractions over observation times (Figure 10)."""

    prefix48: Prefix
    # observation hour -> fraction of probed blocks with an EUI-64 answer
    points: dict[float, float] = field(default_factory=dict)

    def sorted_points(self) -> list[tuple[float, float]]:
        return sorted(self.points.items())


def density_over_time(
    store: ObservationStore,
    prefixes48: list[Prefix],
    blocks_per_48: int,
    bucket_hours: float = 1.0,
) -> dict[Prefix, DensitySeries]:
    """EUI density of each /48 per time bucket.

    *blocks_per_48* is how many targets each /48 received per sweep (256
    when probing per /56); the density at a bucket is distinct EUI-64
    sources observed / blocks probed, comparable to Figure 10's
    "fraction of /64s occupied".
    """
    if blocks_per_48 <= 0:
        raise ValueError("blocks_per_48 must be positive")
    series = {p: DensitySeries(prefix48=p) for p in prefixes48}
    sources_at: dict[tuple[Prefix, float], set[int]] = defaultdict(set)

    for observation in store.eui64_only():
        bucket = round(hours(observation.t_seconds) / bucket_hours) * bucket_hours
        for prefix in prefixes48:
            if observation.source in prefix:
                sources_at[(prefix, bucket)].add(observation.source)
                break

    for (prefix, bucket), sources in sources_at.items():
        series[prefix].points[bucket] = len(sources) / blocks_per_48
    return series
