"""Section 4.2: EUI-64 density inference over candidate /48s.

Density is the number of unique EUI-64 response addresses divided by the
probes sent into the /48.  The paper sends one probe per /56 (256 per
/48) and classifies a /48 *low density* when density < 0.01 -- i.e. two
or fewer unique EUI-64 responders -- to weed out prefixes delegated
whole to a single device (or load-balanced across two interfaces), which
would waste exhaustive probing later.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.addr import Prefix, iid_of
from repro.net.eui64 import is_eui64_iid
from repro.net.icmpv6 import ProbeResponse

LOW_DENSITY_THRESHOLD = 0.01


class DensityClass(enum.Enum):
    HIGH = "high"
    LOW = "low"
    UNRESPONSIVE = "unresponsive"


@dataclass(frozen=True, slots=True)
class DensityReport:
    """Density verdict for one probed /48."""

    prefix: Prefix
    probes_sent: int
    unique_eui64: int
    density: float
    classification: DensityClass

    def describe(self) -> str:
        return (
            f"{self.prefix}: {self.unique_eui64} EUI-64 / {self.probes_sent} probes "
            f"= {self.density:.4f} -> {self.classification.value}"
        )


def classify_density(
    prefix: Prefix,
    probes_sent: int,
    responses: list[ProbeResponse],
    threshold: float = LOW_DENSITY_THRESHOLD,
) -> DensityReport:
    """Classify one /48 from its probe responses.

    Only EUI-64 sources count toward density (the paper's target
    population is EUI-64 CPE); a /48 with zero responses of any kind is
    *unresponsive* and dropped from all later probing.
    """
    if probes_sent <= 0:
        raise ValueError("probes_sent must be positive")
    unique_eui = {r.source for r in responses if is_eui64_iid(iid_of(r.source))}
    density = len(unique_eui) / probes_sent

    if not responses:
        classification = DensityClass.UNRESPONSIVE
    elif density < threshold:
        classification = DensityClass.LOW
    else:
        classification = DensityClass.HIGH

    return DensityReport(
        prefix=prefix,
        probes_sent=probes_sent,
        unique_eui64=len(unique_eui),
        density=density,
        classification=classification,
    )
