"""Section 5.5: pathologies -- multi-AS IIDs, MAC reuse, provider switches.

Three anomaly classes fall out of the per-IID, per-AS observation
matrix:

* **multi-AS IIDs**: the same EUI-64 IID answering from several ASes at
  all (10k of the paper's 9M IIDs),
* **MAC reuse**: an IID observed in two or more ASes *concurrently*
  (overlapping observation days) -- physically impossible for one
  device, so the manufacturer shipped duplicate MACs (Figure 11; also
  the all-zero default MAC seen in 12 ASes), and
* **provider switches**: an IID whose observations in one AS cease and
  then begin in another with no overlap -- a customer changing ISPs
  (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.records import ObservationStore


@dataclass
class IidAsPresence:
    """Which days an IID was observed in each AS."""

    iid: int
    days_by_asn: dict[int, set[int]] = field(default_factory=dict)

    @property
    def asns(self) -> set[int]:
        return set(self.days_by_asn)

    def overlapping_asns(self) -> set[frozenset[int]]:
        """AS pairs whose observation-day ranges overlap (MAC reuse)."""
        pairs: set[frozenset[int]] = set()
        asns = sorted(self.days_by_asn)
        for i, a in enumerate(asns):
            range_a = (min(self.days_by_asn[a]), max(self.days_by_asn[a]))
            for b in asns[i + 1:]:
                range_b = (min(self.days_by_asn[b]), max(self.days_by_asn[b]))
                if range_a[0] <= range_b[1] and range_b[0] <= range_a[1]:
                    pairs.add(frozenset((a, b)))
        return pairs


@dataclass(frozen=True, slots=True)
class ProviderSwitch:
    """An IID that left one AS and appeared in another (Figure 12)."""

    iid: int
    from_asn: int
    to_asn: int
    last_day_old: int
    first_day_new: int


@dataclass
class PathologyReport:
    """All Section 5.5 findings for one campaign."""

    multi_as_iids: dict[int, IidAsPresence] = field(default_factory=dict)
    mac_reuse_iids: set[int] = field(default_factory=set)
    switches: list[ProviderSwitch] = field(default_factory=list)

    @property
    def n_multi_as(self) -> int:
        return len(self.multi_as_iids)

    def max_as_spread(self) -> int:
        """Most ASes any one IID was seen in (the paper's 12-AS zero MAC)."""
        if not self.multi_as_iids:
            return 0
        return max(len(p.asns) for p in self.multi_as_iids.values())


def analyze_pathologies(store: ObservationStore, origin_of) -> PathologyReport:
    """Classify every multi-AS EUI-64 IID as MAC reuse or a switch.

    An IID in several ASes with overlapping day ranges is MAC reuse; one
    whose per-AS day ranges are disjoint and sequential is a provider
    switch.  (A single device cannot be both, but an IID reused on many
    devices can legitimately produce several reuse pairs.)
    """
    presence: dict[int, IidAsPresence] = {}
    for observation in store.eui64_only():
        asn = origin_of(observation.source) or 0
        entry = presence.get(observation.source_iid)
        if entry is None:
            entry = IidAsPresence(iid=observation.source_iid)
            presence[observation.source_iid] = entry
        entry.days_by_asn.setdefault(asn, set()).add(observation.day)

    report = PathologyReport()
    for iid, entry in presence.items():
        if len(entry.asns) < 2:
            continue
        report.multi_as_iids[iid] = entry
        if entry.overlapping_asns():
            report.mac_reuse_iids.add(iid)
        report.switches.extend(_find_switches(entry))
    return report


def _find_switches(entry: IidAsPresence) -> list[ProviderSwitch]:
    """Disjoint, ordered AS tenancies within one IID's history."""
    switches = []
    spans = sorted(
        ((min(days), max(days), asn) for asn, days in entry.days_by_asn.items()),
    )
    for (first_lo, first_hi, asn_a), (second_lo, _second_hi, asn_b) in zip(
        spans, spans[1:]
    ):
        if first_hi < second_lo:  # strictly sequential: a switch
            switches.append(
                ProviderSwitch(
                    iid=entry.iid,
                    from_asn=asn_a,
                    to_asn=asn_b,
                    last_day_old=first_hi,
                    first_day_new=second_lo,
                )
            )
    return switches
