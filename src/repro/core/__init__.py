"""The paper's contribution: inference, discovery, and tracking.

Everything in this subpackage consumes only what a real off-path attacker
observes -- ``<target, ICMPv6 response source, time>`` records -- and never
touches simulator ground truth.  The modules map one-to-one onto the
paper's methodology:

========================  =====================================================
``records``               observation records and the campaign store
``allocation``            Algorithm 1 -- customer allocation size inference
``rotation_pool``         Algorithm 2 -- rotation pool size inference
``density``               Section 4.2 -- EUI-64 density classification
``rotation_detect``       Section 4.3 -- two-snapshot rotation detection
``pipeline``              Section 4 -- seed / expand / density / detect
``campaign``              Section 5 -- the daily measurement campaign
``homogeneity``           Section 5.1 -- per-AS manufacturer homogeneity
``grids``                 Figures 3 & 6 -- per-/48 allocation grids
``timeseries``            Figures 9-12 -- trajectories and densities
``pathology``             Section 5.5 -- MAC reuse, provider switches
``search_space``          Figure 2 -- search-space and probe-cost model
``tracker``               Section 6 -- tracking IIDs across rotations
``correlator``            Section 6 -- re-identifying client traffic
``predictor``             Section 5.4 -- next-prefix prediction (extension)
``blocklist``             Section 9 -- rotation-aware blocking (extension)
========================  =====================================================
"""

from repro.core.allocation import AllocationInference, infer_allocation_plen
from repro.core.campaign import Campaign, CampaignResult
from repro.core.density import DensityClass, DensityReport, classify_density
from repro.core.homogeneity import HomogeneityReport, homogeneity_by_asn
from repro.core.pipeline import DiscoveryPipeline, PipelineResult
from repro.core.records import ObservationStore, ProbeObservation
from repro.core.rotation_detect import RotationDetection, detect_rotating_prefixes
from repro.core.rotation_pool import RotationPoolInference, infer_rotation_pool_plen
from repro.core.search_space import SearchSpaceBound, probes_to_sweep, sweep_seconds
from repro.core.tracker import DeviceTracker, TrackingReport

__all__ = [
    "AllocationInference",
    "Campaign",
    "CampaignResult",
    "DensityClass",
    "DensityReport",
    "DeviceTracker",
    "DiscoveryPipeline",
    "HomogeneityReport",
    "ObservationStore",
    "PipelineResult",
    "ProbeObservation",
    "RotationDetection",
    "RotationPoolInference",
    "SearchSpaceBound",
    "TrackingReport",
    "classify_density",
    "detect_rotating_prefixes",
    "homogeneity_by_asn",
    "infer_allocation_plen",
    "infer_rotation_pool_plen",
    "probes_to_sweep",
    "sweep_seconds",
]
