"""Figure 2: bounding the tracking search space, and the probe-cost model.

The attacker's problem: after a rotation, a hunted CPE may sit anywhere
in its provider's BGP prefix -- up to 2^32 /64s for a /32.  Two
inferences shrink that: the customer *allocation size* means one probe
per allocation unit suffices (not one per /64), and the *rotation pool*
bounds where the delegation can move.  This module quantifies the
savings and converts probe counts to wall-clock time at a probing rate,
reproducing the paper's "2^18-1 expected probes, about 13 seconds at
10kpps" arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass


def probes_to_sweep(space_plen: int, allocation_plen: int) -> int:
    """Probes to cover a length-*space_plen* prefix at one per allocation."""
    if allocation_plen < space_plen:
        raise ValueError(
            f"allocation /{allocation_plen} larger than space /{space_plen}"
        )
    if allocation_plen > 64:
        raise ValueError(f"allocation plen must be <= 64, got {allocation_plen}")
    return 1 << (allocation_plen - space_plen)


def expected_probes_to_hit(space_plen: int, allocation_plen: int) -> float:
    """Expected probes until the hunted CPE answers, scanning randomly.

    Uniform position, no repeats: E = (n+1)/2 ~ n/2; the paper quotes
    ``E[] = 2^18 - 1`` style bounds for the worst case and ~half for the
    mean.
    """
    n = probes_to_sweep(space_plen, allocation_plen)
    return (n + 1) / 2


def sweep_seconds(probes: int, rate_pps: float = 10_000.0) -> float:
    """Wall-clock seconds to send *probes* at *rate_pps*."""
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive, got {rate_pps}")
    return probes / rate_pps


@dataclass(frozen=True, slots=True)
class SearchSpaceBound:
    """The attacker's plan for one hunted device.

    ``bgp_plen`` bounds the space from above (the provider's advertised
    prefix); ``pool_plen`` from below (the inferred rotation pool);
    ``allocation_plen`` sets the probe granularity.
    """

    bgp_plen: int
    pool_plen: int
    allocation_plen: int

    def __post_init__(self) -> None:
        if not self.bgp_plen <= self.pool_plen <= self.allocation_plen <= 64:
            raise ValueError(
                f"expected bgp <= pool <= allocation <= 64, got "
                f"/{self.bgp_plen} /{self.pool_plen} /{self.allocation_plen}"
            )

    @property
    def naive_probes(self) -> int:
        """Exhaustive per-/64 sweep of the whole BGP prefix."""
        return probes_to_sweep(self.bgp_plen, 64)

    @property
    def reduced_probes(self) -> int:
        """One probe per allocation unit across the rotation pool."""
        return probes_to_sweep(self.pool_plen, self.allocation_plen)

    @property
    def reduction_factor(self) -> float:
        """How many times cheaper the informed sweep is."""
        return self.naive_probes / self.reduced_probes

    def seconds_at(self, rate_pps: float = 10_000.0) -> float:
        return sweep_seconds(self.reduced_probes, rate_pps)

    def naive_seconds_at(self, rate_pps: float = 10_000.0) -> float:
        return sweep_seconds(self.naive_probes, rate_pps)

    def describe(self) -> str:
        return (
            f"BGP /{self.bgp_plen}, pool /{self.pool_plen}, "
            f"allocation /{self.allocation_plen}: "
            f"{self.reduced_probes} probes vs naive {self.naive_probes} "
            f"({self.reduction_factor:.0f}x cheaper)"
        )
