"""Section 4: the end-to-end discovery pipeline.

Four stages, each feeding the next exactly as in the paper:

1. **Seed** -- a yarrp traceroute campaign (run a simulated year earlier,
   standing in for CAIDA's 2019 routed-/48 dataset) finds /48s whose last
   responsive hop carries a *unique* EUI-64 IID, and the /32s containing
   them.
2. **Expansion & validation** (Section 4.1) -- one zmap probe per /48
   across each seeded /32 re-validates the stale seed and discovers
   sibling /48s that also expose EUI-64 CPE.
3. **Density inference** (Section 4.2) -- one probe per /56 of every
   candidate /48; /48s with density < 0.01 (<= 2 unique EUI responders)
   are dropped as single-device delegations.
4. **Rotation detection** (Section 4.3) -- identical target lists probed
   twice, 24 hours apart; /48s with changed <target, EUI response>
   pairs are flagged as rotation candidates.

Scaling: the paper sweeps every /48 of every routed /32 (61M probes for
expansion alone).  The simulator carves provider pools from the leading
/44s of each /32, so covering the first ``coverage_48s`` /48s of each
/32 exercises the full discovery logic at tractable cost; the bound is a
config knob, not a hidden assumption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.density import DensityClass, DensityReport, classify_density
from repro.core.records import ObservationStore
from repro.core.rotation_detect import (
    RotationDetection,
    detect_rotating_prefixes,
    rotating_asns,
)
from repro.net.addr import Prefix, iid_of
from repro.net.eui64 import is_eui64_iid
from repro.scan.targets import one_target_per_subnet
from repro.scan.yarrp import Yarrp
from repro.scan.zmap import ScanConfig, Zmap6
from repro.simnet.clock import seconds
from repro.simnet.internet import SimInternet


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs for the discovery pipeline."""

    seed: int = 0
    rate_pps: float = 10_000.0
    seed_campaign_hours: float = -365.0 * 24.0
    coverage_48s: int = 256  # leading /48s probed per /32
    probe_plen: int = 56  # density / rotation-detection granularity
    density_threshold: float = 0.01
    expansion_hour: float = 12.0
    density_hour: float = 15.0
    snapshot_a_hour: float = 18.0
    snapshot_b_hour: float = 42.0  # 24 hours after snapshot A
    # The paper sends exactly one probe per /48 in the seed and expansion
    # stages (the CAIDA seed additionally aggregates months of
    # traceroutes).  Our scaled /48s hold tens of customers instead of
    # tens of thousands, so a single random probe misses occupied /48s
    # far more often than in production; a small per-/48 batch
    # compensates for the density gap without changing the methodology.
    seed_probes_per_48: int = 4
    expansion_probes_per_48: int = 6

    def __post_init__(self) -> None:
        if self.coverage_48s <= 0:
            raise ValueError("coverage_48s must be positive")
        if self.seed_probes_per_48 <= 0 or self.expansion_probes_per_48 <= 0:
            raise ValueError("per-/48 probe counts must be positive")
        if abs((self.snapshot_b_hour - self.snapshot_a_hour) - 24.0) > 1e-9:
            raise ValueError("rotation snapshots must be 24 hours apart")


@dataclass
class PipelineResult:
    """Everything the four stages produced."""

    seed_48s: set[Prefix] = field(default_factory=set)
    seed_32s: set[Prefix] = field(default_factory=set)
    expanded_48s: set[Prefix] = field(default_factory=set)
    density_reports: dict[Prefix, DensityReport] = field(default_factory=dict)
    high_density_48s: set[Prefix] = field(default_factory=set)
    low_density_48s: set[Prefix] = field(default_factory=set)
    unresponsive_48s: set[Prefix] = field(default_factory=set)
    detection: RotationDetection = field(default_factory=RotationDetection)
    store: ObservationStore = field(default_factory=ObservationStore)
    probes_sent: int = 0

    @property
    def rotating_48s(self) -> set[Prefix]:
        return self.detection.rotating_prefixes

    def rotating_by_asn(self, origin_of) -> dict[int, int]:
        """Rotating /48 counts per origin AS (Table 1, left)."""
        return rotating_asns(self.detection, origin_of)

    def rotating_by_country(self, origin_of, country_of) -> dict[str, int]:
        """Rotating /48 counts per country (Table 1, right)."""
        counts: dict[str, int] = {}
        for asn, n in self.rotating_by_asn(origin_of).items():
            country = country_of(asn)
            counts[country] = counts.get(country, 0) + n
        return counts

    def summary(self) -> dict[str, int]:
        """The Section 4 headline counters."""
        return {
            "seed_48s": len(self.seed_48s),
            "seed_32s": len(self.seed_32s),
            "expanded_48s": len(self.expanded_48s),
            "high_density_48s": len(self.high_density_48s),
            "low_density_48s": len(self.low_density_48s),
            "unresponsive_48s": len(self.unresponsive_48s),
            "rotating_48s": len(self.rotating_48s),
            "total_addresses": len(self.store.unique_sources()),
            "eui64_addresses": len(self.store.unique_eui64_sources()),
            "unique_eui64_iids": len(self.store.eui64_iids()),
            "probes_sent": self.probes_sent,
        }


class DiscoveryPipeline:
    """Runs the four Section 4 stages against a simulated Internet."""

    def __init__(self, internet: SimInternet, config: PipelineConfig | None = None):
        self.internet = internet
        self.config = config or PipelineConfig()

    # -- stage 1: seed -------------------------------------------------------

    def _routed_32s(self) -> list[Prefix]:
        return sorted(
            (route.prefix for route in self.internet.rib.routes() if route.prefix.plen <= 32),
            key=lambda p: p.network,
        )

    def run_seed_stage(self, result: PipelineResult) -> None:
        """Stale traceroute seed: /48s with a unique EUI-64 last hop."""
        config = self.config
        rng = random.Random(config.seed ^ 0x5EED)
        targets = []
        for bgp in self._routed_32s():
            count = min(config.coverage_48s, bgp.num_subnets(48))
            for i in range(count):
                subnet = bgp.subnet(i, 48)
                # One probe into the /48's first /64 -- providers that
                # assign delegations sequentially are dense at the bottom
                # -- plus uniform random probes across the /48.
                targets.append(subnet.subnet(0, 64).random_addr(rng))
                for _ in range(config.seed_probes_per_48):
                    targets.append(subnet.random_addr(rng))

        yarrp = Yarrp(self.internet, rate_pps=config.rate_pps, seed=config.seed)
        records = yarrp.eui64_last_hops(
            targets, start_seconds=seconds(config.seed_campaign_hours)
        )
        result.probes_sent += len(targets)

        by_iid: dict[int, set[Prefix]] = {}
        for record in records:
            hop = record.last_responsive_hop
            prefix48 = Prefix.containing(record.target, 48)
            by_iid.setdefault(iid_of(hop), set()).add(prefix48)
        for iid, prefixes in by_iid.items():
            if len(prefixes) == 1:  # the paper's uniqueness requirement
                prefix48 = next(iter(prefixes))
                result.seed_48s.add(prefix48)
                result.seed_32s.add(Prefix.containing(prefix48.network, 32))

    # -- stage 2: expansion (Section 4.1) -----------------------------------

    def run_expansion_stage(self, result: PipelineResult) -> None:
        config = self.config
        rng = random.Random(config.seed ^ 0xE9A)
        targets = []
        for bgp32 in sorted(result.seed_32s, key=lambda p: p.network):
            count = min(config.coverage_48s, bgp32.num_subnets(48))
            for i in range(count):
                subnet = bgp32.subnet(i, 48)
                targets.append(subnet.subnet(0, 64).random_addr(rng))
                for _ in range(config.expansion_probes_per_48):
                    targets.append(subnet.random_addr(rng))

        scanner = Zmap6(
            self.internet, ScanConfig(rate_pps=config.rate_pps, seed=config.seed)
        )
        # The widest scan of the pipeline rides the columnar path end to
        # end: the scanner emits flat column batches, the store appends
        # them without building observation objects, and the EUI test
        # reads the IID column directly.
        stream = scanner.stream(targets, start_seconds=seconds(config.expansion_hour))
        for batch in stream.column_batches(day=0):
            result.store.extend_columns(batch)
            for tgt_hi, src_lo in zip(batch.tgt_hi, batch.src_lo):
                if is_eui64_iid(src_lo):
                    result.expanded_48s.add(Prefix((tgt_hi >> 16) << 80, 48))
        result.probes_sent += stream.probes_sent

    # -- stage 3: density (Section 4.2) --------------------------------------

    def run_density_stage(self, result: PipelineResult) -> None:
        config = self.config
        rng = random.Random(config.seed ^ 0xDE45)
        scanner = Zmap6(
            self.internet, ScanConfig(rate_pps=config.rate_pps, seed=config.seed)
        )
        start = seconds(config.density_hour)
        for prefix48 in sorted(result.expanded_48s, key=lambda p: p.network):
            targets = one_target_per_subnet(prefix48, config.probe_plen, rng)
            scan = scanner.scan(targets, start_seconds=start)
            start += scan.duration_seconds
            result.probes_sent += scan.probes_sent
            result.store.add_responses(scan.responses, day=0)
            report = classify_density(
                prefix48, scan.probes_sent, scan.responses, config.density_threshold
            )
            result.density_reports[prefix48] = report
            if report.classification is DensityClass.HIGH:
                result.high_density_48s.add(prefix48)
            elif report.classification is DensityClass.LOW:
                result.low_density_48s.add(prefix48)
            else:
                result.unresponsive_48s.add(prefix48)

    # -- stage 4: rotation detection (Section 4.3) ---------------------------

    def run_rotation_stage(self, result: PipelineResult) -> None:
        config = self.config
        rng = random.Random(config.seed ^ 0x404)
        targets = []
        for prefix48 in sorted(result.high_density_48s, key=lambda p: p.network):
            targets.extend(one_target_per_subnet(prefix48, config.probe_plen, rng))

        scanner = Zmap6(
            self.internet, ScanConfig(rate_pps=config.rate_pps, seed=config.seed)
        )
        snap_a = scanner.scan(targets, start_seconds=seconds(config.snapshot_a_hour))
        snap_b = scanner.scan(targets, start_seconds=seconds(config.snapshot_b_hour))
        result.probes_sent += snap_a.probes_sent + snap_b.probes_sent
        result.store.add_responses(snap_a.responses, day=0)
        result.store.add_responses(snap_b.responses, day=1)
        result.detection = detect_rotating_prefixes(snap_a, snap_b)

    def run(self) -> PipelineResult:
        """All four stages, in order."""
        result = PipelineResult()
        self.run_seed_stage(result)
        self.run_expansion_stage(result)
        self.run_density_stage(result)
        self.run_rotation_stage(result)
        return result
