"""Section 6: tracking individual EUI-64 IIDs across prefix rotations.

The tracker is the attack the whole paper builds toward.  Given a hunted
IID, its last known address, and the per-AS inferences (allocation size,
rotation pool size), each day it:

1. bounds the search space to the inferred rotation pool containing the
   last known address (Figure 2),
2. sends one probe per inferred allocation unit, in seeded-random order,
   stopping as soon as a response carries the hunted IID, and
3. if the pool scan misses, optionally *widens* the space (the paper's
   fallback when pool-size inference underestimates) and tries once
   more.

Probe accounting matches Table 2: per-day probes sent until discovery
(or the full sweep count on a miss), plus how many distinct /64s the IID
was found in and on how many days.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addr import IID_BITS, Prefix
from repro.scan.targets import one_target_per_subnet
from repro.scan.zmap import ScanConfig, Zmap6
from repro.simnet.clock import HOURS_PER_DAY, seconds
from repro.simnet.internet import SimInternet
from repro.util import mean, stddev


@dataclass(frozen=True, slots=True)
class AsProfile:
    """The attacker's per-AS knowledge from Sections 3.2.1-3.2.2."""

    asn: int
    allocation_plen: int
    pool_plen: int

    def __post_init__(self) -> None:
        if not self.pool_plen <= self.allocation_plen <= IID_BITS:
            raise ValueError(
                f"profile must satisfy pool <= allocation <= 64, got "
                f"/{self.pool_plen} /{self.allocation_plen}"
            )


@dataclass(frozen=True)
class TrackerConfig:
    seed: int = 0
    rate_pps: float = 10_000.0
    scan_hour: float = 13.0
    widen_bits: int = 2  # pool expansion on a miss; 0 disables
    max_widenings: int = 1

    def __post_init__(self) -> None:
        if self.widen_bits < 0 or self.max_widenings < 0:
            raise ValueError("widen_bits and max_widenings must be >= 0")


@dataclass(frozen=True, slots=True)
class DayOutcome:
    """One day's attempt against one IID."""

    day: int
    found: bool
    probes_sent: int
    source: int | None
    changed_prefix: bool  # relative to the previous *found* position


@dataclass
class IidTrack:
    """A full tracking record for one hunted IID."""

    iid: int
    initial_address: int
    outcomes: list[DayOutcome] = field(default_factory=list)

    @property
    def days_found(self) -> int:
        return sum(1 for o in self.outcomes if o.found)

    @property
    def distinct_net64s(self) -> int:
        found = {o.source >> IID_BITS for o in self.outcomes if o.found}
        found.add(self.initial_address >> IID_BITS)
        return len(found)

    @property
    def probe_counts(self) -> list[int]:
        return [o.probes_sent for o in self.outcomes]

    @property
    def mean_probes(self) -> float:
        return mean(self.probe_counts)

    @property
    def stddev_probes(self) -> float:
        return stddev(self.probe_counts)

    @property
    def ever_rotated(self) -> bool:
        return any(o.changed_prefix for o in self.outcomes if o.found)


@dataclass
class TrackingReport:
    """All tracked IIDs plus the Figure 13 daily aggregates."""

    tracks: dict[int, IidTrack] = field(default_factory=dict)

    def found_per_day(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for track in self.tracks.values():
            for outcome in track.outcomes:
                if outcome.found:
                    counts[outcome.day] = counts.get(outcome.day, 0) + 1
        return counts

    def changed_prefix_per_day(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for track in self.tracks.values():
            for outcome in track.outcomes:
                if outcome.found and outcome.changed_prefix:
                    counts[outcome.day] = counts.get(outcome.day, 0) + 1
        return counts

    def same_prefix_per_day(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for track in self.tracks.values():
            for outcome in track.outcomes:
                if outcome.found and not outcome.changed_prefix:
                    counts[outcome.day] = counts.get(outcome.day, 0) + 1
        return counts


class DeviceTracker:
    """Tracks hunted IIDs day by day using inferred search-space bounds."""

    def __init__(
        self,
        internet: SimInternet,
        profiles: dict[int, AsProfile],
        config: TrackerConfig | None = None,
    ) -> None:
        self.internet = internet
        self.profiles = dict(profiles)
        self.config = config or TrackerConfig()

    def _profile_for(self, address: int) -> AsProfile:
        asn = self.internet.rib.origin_of(address)
        if asn is None or asn not in self.profiles:
            raise ValueError(f"no AS profile covering {address:#x}")
        return self.profiles[asn]

    def _attempt(
        self, iid: int, anchor: int, pool_plen: int, allocation_plen: int,
        day: int, salt: int,
    ) -> tuple[int, int | None]:
        """One sweep of the pool containing *anchor*; (probes, source)."""
        pool = Prefix.containing(anchor, pool_plen)
        rng = random.Random(self.config.seed ^ iid ^ (day << 20) ^ salt)
        targets = one_target_per_subnet(pool, allocation_plen, rng)
        scanner = Zmap6(
            self.internet,
            ScanConfig(rate_pps=self.config.rate_pps, seed=self.config.seed ^ day),
        )
        start = seconds(day * HOURS_PER_DAY + self.config.scan_hour)
        response, sent = scanner.scan_until(targets, iid, start_seconds=start)
        return sent, response.source if response else None

    def hunt_one_day(self, iid: int, last_known: int, day: int) -> DayOutcome:
        """One day's pursuit of *iid* anchored at *last_known*.

        The pool sweep plus the widening fallback, shared by the batch
        :meth:`track` loop and the streaming pursuit in
        :mod:`repro.stream.tracker` -- both therefore send identical
        probes for a given (iid, anchor, day).
        """
        profile = self._profile_for(last_known)
        probes, source = self._attempt(
            iid, last_known, profile.pool_plen, profile.allocation_plen, day, 0
        )
        widenings = 0
        pool_plen = profile.pool_plen
        while (
            source is None
            and widenings < self.config.max_widenings
            and self.config.widen_bits > 0
            and pool_plen > self.config.widen_bits
        ):
            widenings += 1
            pool_plen -= self.config.widen_bits
            extra, source = self._attempt(
                iid, last_known, pool_plen, profile.allocation_plen, day, widenings
            )
            probes += extra
        found = source is not None
        changed = bool(found and (source >> IID_BITS) != (last_known >> IID_BITS))
        return DayOutcome(
            day=day,
            found=found,
            probes_sent=probes,
            source=source,
            changed_prefix=changed,
        )

    def track(
        self, iid: int, initial_address: int, days: list[int]
    ) -> IidTrack:
        """Hunt *iid* on each listed day, starting from *initial_address*."""
        track = IidTrack(iid=iid, initial_address=initial_address)
        last_known = initial_address
        for day in days:
            outcome = self.hunt_one_day(iid, last_known, day)
            track.outcomes.append(outcome)
            if outcome.found:
                last_known = outcome.source
        return track

    def track_many(
        self, targets: dict[int, int], days: list[int]
    ) -> TrackingReport:
        """Track several IIDs (iid -> initial address) over the same days."""
        report = TrackingReport()
        for iid, initial in targets.items():
            report.tracks[iid] = self.track(iid, initial, days)
        return report
