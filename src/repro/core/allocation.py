"""Algorithm 1: inferring customer prefix allocation sizes.

The observation exploited: probes to *any* /64 inside one customer's
delegated prefix draw an error from the *same* CPE WAN address.  So the
span of target addresses that elicited a given EUI-64 response bounds the
delegation: with targets in every /64 of a /56 delegation, the extreme
targets' /64 numbers differ by 255 and ``log2(max - min)`` rounds to 8
host bits, i.e. a /56.

Per the paper, the per-AS estimate is the **median** of the per-EUI-64
sizes, which is robust to devices observed in only part of their
delegation and to prefix-rotation noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.records import ObservationStore, ProbeObservation
from repro.net.addr import IID_BITS
from repro.util import median

MIN_PLEN = 48  # RFC 6177's largest recommended end-site allocation
MAX_PLEN = 64  # the smallest SLAAC-capable subnet


def allocation_bits(target_net64s: list[int]) -> float:
    """Host-bit estimate from the /64 numbers of one IID's targets.

    ``log2(max - min)`` per Algorithm 1; a single observation (or all
    targets in one /64) yields 0 bits, i.e. a /64 allocation.
    """
    if not target_net64s:
        raise ValueError("no targets for this IID")
    spread = max(target_net64s) - min(target_net64s)
    if spread <= 0:
        return 0.0
    return math.log2(spread)


def plen_from_bits(bits: float) -> int:
    """Convert a host-bit estimate to a prefix length, clamped sanely."""
    plen = IID_BITS - round(bits)
    return max(MIN_PLEN, min(MAX_PLEN, plen))


def infer_allocation_plen(targets_by_iid: dict[int, list[int]]) -> int:
    """Algorithm 1 verbatim: median per-EUI size -> one AS-level plen.

    *targets_by_iid* maps each EUI-64 IID to the target addresses that
    elicited it within one snapshot (one day -- delegations must not have
    rotated mid-measurement).
    """
    if not targets_by_iid:
        raise ValueError("no EUI-64 observations to infer from")
    sizes = [
        allocation_bits([t >> IID_BITS for t in targets])
        for targets in targets_by_iid.values()
        if targets
    ]
    if not sizes:
        raise ValueError("no usable target lists")
    return plen_from_bits(median(sizes))


@dataclass
class AllocationInference:
    """Full per-AS allocation inference with per-IID detail retained."""

    asn: int
    per_iid_plen: dict[int, int] = field(default_factory=dict)
    inferred_plen: int = MAX_PLEN

    @classmethod
    def from_observations(
        cls, asn: int, observations: list[ProbeObservation], day: int | None = None
    ) -> AllocationInference:
        """Run Algorithm 1 over one AS's observations.

        When *day* is given, only that day's observations are used --
        matching the paper's use of a single probing day for Figure 5a.
        """
        targets_by_iid: dict[int, list[int]] = {}
        for observation in observations:
            if not observation.is_eui64:
                continue
            if day is not None and observation.day != day:
                continue
            targets_by_iid.setdefault(observation.source_iid, []).append(
                observation.target
            )
        if not targets_by_iid:
            raise ValueError(f"AS{asn}: no EUI-64 observations")

        inference = cls(asn=asn)
        sizes = []
        for iid, targets in targets_by_iid.items():
            bits = allocation_bits([t >> IID_BITS for t in targets])
            sizes.append(bits)
            inference.per_iid_plen[iid] = plen_from_bits(bits)
        inference.inferred_plen = plen_from_bits(median(sizes))
        return inference

    @classmethod
    def from_store(
        cls, asn: int, store: ObservationStore, origin_of, day: int | None = None
    ) -> AllocationInference:
        """Convenience: group *store* by AS via *origin_of*, then infer."""
        groups = store.group_eui64_by_asn(origin_of)
        if asn not in groups:
            raise ValueError(f"AS{asn}: no EUI-64 observations in store")
        return cls.from_observations(asn, groups[asn], day=day)

    def plen_histogram(self) -> dict[int, int]:
        """IID counts per inferred plen (Figure 5a's raw data)."""
        histogram: dict[int, int] = {}
        for plen in self.per_iid_plen.values():
            histogram[plen] = histogram.get(plen, 0) + 1
        return histogram
