"""Section 6 (case study framing): re-identifying client traffic flows.

The paper's threat model: a client uses privacy extensions *and* its
provider rotates prefixes, so two flows it originates on different days
share neither IID nor prefix.  An observer holding flow logs cannot link
them -- unless the client sits behind EUI-64 CPE.  Then the observer
probes each flow's source subnet, the CPE answers with its static EUI-64
IID, and flows map to households.

:class:`FlowCorrelator` implements exactly that: per flow, one-or-few
probes into the flow's /64, harvesting the CPE identity.  Its accuracy
over synthetic flow logs reproduces the paper's "60-90%" correlation
claim: failures come from privacy-mode CPE, offline devices, silent
response policies, and rate limiting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addr import IID_BITS, Prefix, iid_of
from repro.net.eui64 import is_eui64_iid
from repro.simnet.internet import SimInternet


@dataclass(frozen=True, slots=True)
class Flow:
    """One observed traffic flow: a client source address at a time."""

    source: int
    t_seconds: float
    household: int | None = None  # ground-truth label, hidden from the attacker


@dataclass
class CorrelationOutcome:
    """Attacker's verdicts plus ground-truth scoring."""

    identified: dict[int, int] = field(default_factory=dict)  # flow idx -> CPE IID
    probes_sent: int = 0

    def pairs_linked(self, flows: list[Flow]) -> tuple[int, int, int]:
        """(correct, incorrect, undecided) over all same/different pairs.

        A pair of flows is *linked* when both were identified and mapped
        to the same CPE IID.  Correct links join flows of one household;
        incorrect links join different households.
        """
        correct = incorrect = undecided = 0
        n = len(flows)
        for i in range(n):
            for j in range(i + 1, n):
                same_truth = (
                    flows[i].household is not None
                    and flows[i].household == flows[j].household
                )
                id_i = self.identified.get(i)
                id_j = self.identified.get(j)
                if id_i is None or id_j is None:
                    if same_truth:
                        undecided += 1
                    continue
                linked = id_i == id_j
                if linked and same_truth:
                    correct += 1
                elif linked and not same_truth:
                    incorrect += 1
                elif not linked and same_truth:
                    undecided += 1
        return correct, incorrect, undecided

    def recall(self, flows: list[Flow]) -> float:
        """Fraction of same-household pairs the attacker linked."""
        correct, _incorrect, undecided = self.pairs_linked(flows)
        total = correct + undecided
        if total == 0:
            raise ValueError("no same-household pairs in flow log")
        return correct / total


class FlowCorrelator:
    """Links flows to households by probing out their CPE identities."""

    def __init__(
        self, internet: SimInternet, probes_per_flow: int = 3, seed: int = 0
    ) -> None:
        if probes_per_flow <= 0:
            raise ValueError("probes_per_flow must be positive")
        self.internet = internet
        self.probes_per_flow = probes_per_flow
        self.seed = seed

    def identify_flow(self, flow: Flow, flow_index: int = 0) -> tuple[int | None, int]:
        """Probe the flow's /64 until an EUI-64 CPE answers.

        Returns ``(cpe_iid | None, probes_sent)``.  Several probes guard
        against per-probe loss and rate limiting; all land in the /64
        the flow's source address occupies, which the CPE routes.
        """
        rng = random.Random(self.seed ^ flow.source ^ (flow_index << 16))
        net64_prefix = Prefix.containing(flow.source, 64)
        sent = 0
        for attempt in range(self.probes_per_flow):
            target = net64_prefix.random_addr(rng)
            sent += 1
            response = self.internet.probe(
                target, flow.t_seconds + 0.1 * (attempt + 1)
            )
            if response is not None and is_eui64_iid(iid_of(response.source)):
                return iid_of(response.source), sent
        return None, sent

    def correlate(self, flows: list[Flow]) -> CorrelationOutcome:
        """Identify every flow and return the attacker's mapping."""
        outcome = CorrelationOutcome()
        for index, flow in enumerate(flows):
            cpe_iid, sent = self.identify_flow(flow, index)
            outcome.probes_sent += sent
            if cpe_iid is not None:
                outcome.identified[index] = cpe_iid
        return outcome


def synthesize_flows(
    internet: SimInternet,
    asn: int,
    n_households: int,
    flows_per_day: int,
    days: list[int],
    seed: int = 0,
) -> list[Flow]:
    """Generate ground-truth-labelled flows from one provider's customers.

    Every household emits *flows_per_day* flows on each listed day; each
    flow's source is a privacy-style random address inside the
    household's *current* delegation at a random hour of that day --
    what a CDN or server would log from an RFC 4941 client.  The
    household -> customer mapping depends only on (seed, household), so
    callers can synthesize once and split by day into training and
    evaluation sets.
    """
    provider = internet.provider_of_asn(asn)
    if provider is None:
        raise ValueError(f"AS{asn} not in this internet")
    pools = [pool for pool in provider.pools if pool.n_customers > 0]
    if not pools:
        raise ValueError(f"AS{asn} has no customers")
    # Assign each household a *distinct* customer within its pool, so
    # ground-truth labels map one-to-one onto CPE devices.
    assignment: dict[int, int] = {}
    for pool_index, pool in enumerate(pools):
        members = [h for h in range(n_households) if h % len(pools) == pool_index]
        if len(members) > pool.n_customers:
            raise ValueError(
                f"pool {pool.prefix} has {pool.n_customers} customers for "
                f"{len(members)} households"
            )
        pool_rng = random.Random(seed ^ 0xF70 ^ pool_index)
        for household, customer in zip(
            members, pool_rng.sample(range(pool.n_customers), len(members))
        ):
            assignment[household] = customer

    flows: list[Flow] = []
    for household in range(n_households):
        pool = pools[household % len(pools)]
        household_rng = random.Random(seed ^ 0xF70 ^ (household << 8))
        customer = assignment[household]
        for day in days:
            for _ in range(flows_per_day):
                t_hours = day * 24.0 + household_rng.uniform(8.0, 23.0)
                delegation = pool.delegation_of(customer, t_hours)
                # Client host subnet: any /64 of the delegation; random IID.
                host64 = delegation.random_subnet(64, household_rng)
                source = host64.network | household_rng.getrandbits(IID_BITS)
                flows.append(
                    Flow(
                        source=source,
                        t_seconds=t_hours * 3600.0,
                        household=household,
                    )
                )
    return flows
