"""Section 5.1: per-AS CPE manufacturer homogeneity.

Reversing the EUI-64 transform on every discovered IID yields the CPE's
MAC, whose OUI names the manufacturer.  An AS's *homogeneity* is the
fraction of its unique EUI-64 IIDs belonging to its most common vendor.
The paper finds extreme concentration (NetCologne 99.98% AVM, Viettel
99.6% ZTE) and, across 87 ASes with >= 100 IIDs, more than half above
0.9 -- the CDF of Figure 4.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.records import ObservationStore
from repro.net.eui64 import eui64_iid_to_mac
from repro.net.oui import OuiRegistry

MIN_IIDS_FOR_INCLUSION = 100  # the paper's Figure 4 cut-off


@dataclass
class AsHomogeneity:
    """Vendor mix of one AS."""

    asn: int
    vendor_counts: Counter = field(default_factory=Counter)

    @property
    def total_iids(self) -> int:
        return sum(self.vendor_counts.values())

    @property
    def dominant_vendor(self) -> str:
        if not self.vendor_counts:
            raise ValueError(f"AS{self.asn}: no vendors observed")
        return self.vendor_counts.most_common(1)[0][0]

    @property
    def homogeneity(self) -> float:
        """max(unique IIDs per vendor) / total unique IIDs."""
        total = self.total_iids
        if total == 0:
            raise ValueError(f"AS{self.asn}: no IIDs observed")
        return self.vendor_counts.most_common(1)[0][1] / total


@dataclass
class HomogeneityReport:
    """Homogeneity across all ASes in a campaign."""

    per_asn: dict[int, AsHomogeneity] = field(default_factory=dict)
    min_iids: int = MIN_IIDS_FOR_INCLUSION

    def included(self) -> list[AsHomogeneity]:
        """ASes meeting the minimum-IID bar, Figure 4's population."""
        return [
            h for h in self.per_asn.values() if h.total_iids >= self.min_iids
        ]

    def homogeneity_values(self) -> list[float]:
        """Sorted homogeneity indices for the CDF."""
        return sorted(h.homogeneity for h in self.included())

    def fraction_above(self, threshold: float) -> float:
        values = self.homogeneity_values()
        if not values:
            raise ValueError("no ASes meet the inclusion bar")
        return sum(1 for v in values if v > threshold) / len(values)

    def distinct_vendors(self) -> set[str]:
        vendors: set[str] = set()
        for h in self.per_asn.values():
            vendors.update(h.vendor_counts)
        return vendors


def homogeneity_by_asn(
    store: ObservationStore,
    origin_of,
    registry: OuiRegistry | None = None,
    min_iids: int = MIN_IIDS_FOR_INCLUSION,
) -> HomogeneityReport:
    """Compute per-AS homogeneity from campaign observations.

    Each unique EUI-64 IID counts once per AS it was observed in (an IID
    moving between ASes -- Section 5.5 -- contributes to both).
    """
    registry = registry or OuiRegistry.bundled()
    iids_per_asn: dict[int, set[int]] = defaultdict(set)
    for observation in store.eui64_only():
        asn = origin_of(observation.source) or 0
        iids_per_asn[asn].add(observation.source_iid)

    report = HomogeneityReport(min_iids=min_iids)
    for asn, iids in iids_per_asn.items():
        entry = AsHomogeneity(asn=asn)
        for iid in iids:
            vendor = registry.vendor_of_mac(eui64_iid_to_mac(iid))
            entry.vendor_counts[vendor] += 1
        report.per_asn[asn] = entry
    return report
