"""Section 5.4 extension: predicting a rotator's next prefix.

Figure 9's observation -- AS8881 delegations increment by a constant
step daily and wrap modulo the rotation pool -- "helps scope an
attacker's prediction of what prefix an IID will have in the future".
This module turns that remark into an algorithm: detect a constant
increment from an observed trajectory, then predict future /64s
modulo the inferred pool.  A correct prediction collapses tracking cost
from a pool sweep to a single probe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.timeseries import TrajectoryPoint
from repro.net.addr import IID_BITS, Prefix


@dataclass(frozen=True, slots=True)
class IncrementModel:
    """A fitted next-prefix model for one IID."""

    step_net64: int  # /64-number increment per day
    pool: Prefix  # wrap-around modulus
    last_day: int
    last_net64: int
    confidence: float  # fraction of day-gaps consistent with the step

    def predict_net64(self, day: int) -> int:
        """Predicted /64 number on *day* (wraps modulo the pool)."""
        if day < self.last_day:
            raise ValueError("prediction must be in the future")
        pool64_base = self.pool.network >> IID_BITS
        pool64_size = 1 << (IID_BITS - self.pool.plen)
        offset = (self.last_net64 - pool64_base) + self.step_net64 * (day - self.last_day)
        return pool64_base + offset % pool64_size

    def predict_address(self, day: int, iid: int) -> int:
        return (self.predict_net64(day) << IID_BITS) | iid


def fit_increment_model(
    points: list[TrajectoryPoint], pool: Prefix, min_points: int = 3
) -> IncrementModel | None:
    """Fit a constant-increment model, or None if the IID doesn't follow one.

    Uses the modal per-day delta across consecutive observations; deltas
    are computed modulo the pool so a wrap (the big negative jump in
    Figure 9) still reads as the same step.  Returns None when fewer
    than *min_points* observations or when no single step explains at
    least half the gaps.
    """
    if min_points < 2:
        raise ValueError("min_points must be at least 2")
    if len(points) < min_points:
        return None
    pool64_size = 1 << (IID_BITS - pool.plen)
    deltas: list[int] = []
    for prev, nxt in zip(points, points[1:]):
        gap = nxt.day - prev.day
        if gap <= 0:
            continue
        raw = (nxt.net64 - prev.net64) % pool64_size
        if raw % gap:
            continue  # not consistent with a constant daily step
        deltas.append(raw // gap)
    if not deltas:
        return None
    step, count = Counter(deltas).most_common(1)[0]
    confidence = count / len(deltas)
    if confidence < 0.5:
        return None
    last = points[-1]
    return IncrementModel(
        step_net64=step,
        pool=pool,
        last_day=last.day,
        last_net64=last.net64,
        confidence=confidence,
    )


def prediction_hit_rate(
    model: IncrementModel, actual: list[TrajectoryPoint]
) -> float:
    """Fraction of future observations the model predicted exactly."""
    future = [p for p in actual if p.day > model.last_day]
    if not future:
        raise ValueError("no future observations to score against")
    hits = sum(1 for p in future if model.predict_net64(p.day) == p.net64)
    return hits / len(future)
