"""Section 4.3: detecting prefix rotation from two 24-hour snapshots.

The detector probes identical targets twice, 24 hours apart, and keeps
``<target, response>`` pairs where the response carries an EUI-64 IID in
either scan.  Pairs common to both snapshots are removed; anything left
means the binding between a probed location and the answering EUI-64
device changed -- rotation, reassignment, or appearance/disappearance.
The /48s containing such targets are flagged as rotation candidates.

The paper deliberately sets no "fraction changed" threshold, accepting
gradual or partial rotation, and acknowledges the method also fires on
device churn -- which is why roughly half the flagged ASes later infer a
/64 pool (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import Prefix, iid_of
from repro.net.eui64 import is_eui64_iid
from repro.scan.zmap import ScanResult

_NET48_SHIFT = 80


@dataclass
class RotationDetection:
    """Outcome of the two-snapshot comparison."""

    changed_pairs: set[tuple[int, int]] = field(default_factory=set)
    rotating_prefixes: set[Prefix] = field(default_factory=set)
    stable_pairs: int = 0

    @property
    def n_rotating(self) -> int:
        return len(self.rotating_prefixes)


def eui64_pair(target: int, source: int) -> tuple[int, int] | None:
    """The ``<target, response>`` pair if *source* carries an EUI-64 IID.

    The unit of Section 4.3's comparison, shared by the batch detector
    below and the streaming detector in :mod:`repro.stream.state`.
    """
    if is_eui64_iid(iid_of(source)):
        return (target, source)
    return None


def _eui64_pairs(result: ScanResult) -> set[tuple[int, int]]:
    return {
        pair
        for r in result.responses
        if (pair := eui64_pair(r.target, r.source)) is not None
    }


def target_prefix48(target: int) -> Prefix:
    """The /48 containing a probed target (the flagging granularity)."""
    return Prefix(target >> _NET48_SHIFT << _NET48_SHIFT, 48)


def diff_pairs(
    pairs_a: set[tuple[int, int]], pairs_b: set[tuple[int, int]]
) -> RotationDetection:
    """The snapshot comparison itself, over pre-extracted EUI-64 pairs.

    Both the batch two-scan detector and the streaming day-over-day
    detector reduce to this diff, so they flag identical prefixes.
    """
    common = pairs_a & pairs_b
    changed = (pairs_a | pairs_b) - common

    # A target whose EUI pair appears in only one snapshot changed; also
    # catch targets answered by different EUI sources in the two scans.
    detection = RotationDetection(changed_pairs=changed, stable_pairs=len(common))
    for target, _source in changed:
        detection.rotating_prefixes.add(target_prefix48(target))
    return detection


def detect_rotating_prefixes(
    first: ScanResult, second: ScanResult
) -> RotationDetection:
    """Compare two same-target scans taken 24 hours apart.

    Returns the changed ``<target, response>`` pairs and the /48 prefixes
    containing their targets.  A "change" covers EUI-to-different-EUI,
    EUI-to-nothing, and nothing-to-EUI transitions, exactly as the paper
    describes.
    """
    return diff_pairs(_eui64_pairs(first), _eui64_pairs(second))


def rotating_asns(
    detection: RotationDetection, origin_of
) -> dict[int, int]:
    """Count rotating /48s per origin AS (Table 1's left column).

    *origin_of* maps an address to its BGP origin ASN (``RoutingTable.
    origin_of``); /48s with no covering route count under ASN 0.
    """
    counts: dict[int, int] = {}
    for prefix in detection.rotating_prefixes:
        asn = origin_of(prefix.network) or 0
        counts[asn] = counts.get(asn, 0) + 1
    return counts
