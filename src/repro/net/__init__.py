"""IPv6 fundamentals: addresses, prefixes, MACs, EUI-64, IIDs, ICMPv6.

This subpackage is the lowest substrate layer. Everything here is pure
computation over integers -- no simulation state, no I/O -- so the rest of
the library (simulator, scanners, inference pipeline) can share one fast,
well-tested representation of the IPv6 address space.
"""

from repro.net.addr import (
    ADDR_BITS,
    ADDR_MAX,
    IID_BITS,
    IID_MASK,
    Prefix,
    format_addr,
    high64,
    iid_of,
    parse_addr,
    with_iid,
)
from repro.net.eui64 import (
    eui64_iid_to_mac,
    is_eui64_iid,
    mac_to_eui64_iid,
)
from repro.net.iid import IidKind, classify_iid
from repro.net.icmpv6 import (
    IcmpCode,
    IcmpType,
    Icmpv6Message,
    ProbeResponse,
)
from repro.net.mac import (
    MAC_MAX,
    format_mac,
    is_locally_administered,
    is_multicast_mac,
    oui_of,
    parse_mac,
)
from repro.net.oui import OuiRegistry

__all__ = [
    "ADDR_BITS",
    "ADDR_MAX",
    "IID_BITS",
    "IID_MASK",
    "IcmpCode",
    "IcmpType",
    "Icmpv6Message",
    "IidKind",
    "MAC_MAX",
    "OuiRegistry",
    "Prefix",
    "ProbeResponse",
    "classify_iid",
    "eui64_iid_to_mac",
    "format_addr",
    "format_mac",
    "high64",
    "iid_of",
    "is_eui64_iid",
    "is_locally_administered",
    "is_multicast_mac",
    "mac_to_eui64_iid",
    "oui_of",
    "parse_addr",
    "parse_mac",
    "with_iid",
]
