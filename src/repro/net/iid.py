"""Interface-identifier taxonomy.

The inference pipeline only needs the EUI-64 / non-EUI-64 split, but
classifying the remaining IID styles (RFC 7707 catalogues them) is useful
for characterizing simulated corpora and for the pathology analyses, so we
implement the full taxonomy here.
"""

from __future__ import annotations

import enum

from repro.net.eui64 import is_eui64_iid

_IID_MAX = (1 << 64) - 1


class IidKind(enum.Enum):
    """Recognized interface-identifier generation styles."""

    EUI64 = "eui64"  # embedded MAC with ff:fe marker
    LOW = "low"  # ::1, ::2 ... manually numbered infrastructure
    EMBEDDED_IPV4 = "embedded-ipv4"  # e.g. ::192.0.2.1 in the low 32 bits
    EMBEDDED_PORT = "embedded-port"  # low groups spell a service port
    RANDOM = "random"  # privacy extensions / DHCPv6 random


_COMMON_PORTS = frozenset({21, 22, 25, 53, 80, 110, 123, 143, 443, 587, 993})

# Dotted-quad style IIDs put one decimal octet per 16-bit group, so each
# group must read as 0-255 when printed in hex.
_DEC_OCTET_MAX = 0x255


def _looks_like_embedded_ipv4(iid: int) -> bool:
    """True for IIDs like ``::c000:0201`` (hex) or ``::192:0:2:1`` (dotted)."""
    if iid == 0:
        return False
    groups = [(iid >> (48 - 16 * i)) & 0xFFFF for i in range(4)]
    # Hex-embedded v4: high 32 bits zero, low 32 bits nonzero in both halves.
    if groups[0] == 0 and groups[1] == 0 and groups[2] != 0 and groups[3] != 0:
        return True
    # Decimal-readable quad: every group prints as a 0-255 decimal value.
    if all(g <= _DEC_OCTET_MAX and _hex_reads_decimal(g) for g in groups):
        return any(g > 0xFF for g in groups)
    return False


def _hex_reads_decimal(group: int) -> bool:
    """True if *group*'s hex digits are all decimal digits (0-9)."""
    text = f"{group:x}"
    return all(c in "0123456789" for c in text)


def classify_iid(iid: int) -> IidKind:
    """Classify an IID into one of the :class:`IidKind` styles.

    Order matters: the EUI-64 marker wins over everything, then small
    manually assigned values, then recognizable embeddings; anything left
    is treated as random (the privacy-extension default).
    """
    if not 0 <= iid <= _IID_MAX:
        raise ValueError(f"IID out of range: {iid:#x}")
    if is_eui64_iid(iid):
        return IidKind.EUI64
    if iid <= 0xFFFF:
        if iid in _COMMON_PORTS:
            return IidKind.EMBEDDED_PORT
        return IidKind.LOW
    if _looks_like_embedded_ipv4(iid):
        return IidKind.EMBEDDED_IPV4
    return IidKind.RANDOM
