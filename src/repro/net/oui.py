"""OUI registry: manufacturer lookup for MACs recovered from EUI-64 IIDs.

This is the reproduction's stand-in for the public IEEE OUI registry the
paper consults in Section 5.1.  It is deliberately tiny API surface: map a
MAC (or OUI) to a vendor name, or report it unknown -- exactly what the
homogeneity analysis needs.
"""

from __future__ import annotations

from repro.data.oui_db import vendor_oui_table
from repro.net.mac import OUI_MASK, format_oui, oui_of

UNKNOWN_VENDOR = "<unknown>"


class OuiRegistry:
    """Maps 24-bit OUIs to manufacturer names.

    By default the registry loads the bundled vendor database; tests and
    scenarios can construct one from an explicit table instead.
    """

    def __init__(self, table: dict[int, str] | None = None) -> None:
        self._table = dict(table) if table is not None else vendor_oui_table()

    @classmethod
    def bundled(cls) -> OuiRegistry:
        """The registry backed by the built-in vendor database."""
        return cls()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, oui: int) -> bool:
        return oui in self._table

    def register(self, oui: int, vendor: str) -> None:
        """Add or overwrite an OUI assignment."""
        if not 0 <= oui <= OUI_MASK:
            raise ValueError(f"OUI out of range: {oui:#x}")
        self._table[oui] = vendor

    def vendor_of_oui(self, oui: int) -> str:
        """Vendor name for *oui*, or :data:`UNKNOWN_VENDOR`."""
        return self._table.get(oui, UNKNOWN_VENDOR)

    def vendor_of_mac(self, mac: int) -> str:
        """Vendor name for the OUI of *mac*, or :data:`UNKNOWN_VENDOR`."""
        return self._table.get(oui_of(mac), UNKNOWN_VENDOR)

    def ouis_of_vendor(self, vendor: str) -> tuple[int, ...]:
        """All registered OUIs belonging to *vendor* (sorted)."""
        return tuple(sorted(o for o, v in self._table.items() if v == vendor))

    def vendors(self) -> tuple[str, ...]:
        """All distinct vendor names (sorted)."""
        return tuple(sorted(set(self._table.values())))

    def describe(self, oui: int) -> str:
        return f"{format_oui(oui)} -> {self.vendor_of_oui(oui)}"
