"""48-bit MAC address helpers.

MACs, like IPv6 addresses, are plain ints.  The bits that matter here:

* the *U/L* (universal/local) bit -- bit 1 of the first octet -- which
  EUI-64 conversion flips, and
* the *I/G* (individual/group) bit -- bit 0 of the first octet -- set on
  multicast addresses, which never appear as real interface MACs.

The high 24 bits are the IEEE OUI identifying the manufacturer; recovering
it from an EUI-64 address is the basis of the paper's homogeneity analysis
(Section 5.1).
"""

from __future__ import annotations

MAC_BITS = 48
MAC_MAX = (1 << MAC_BITS) - 1

OUI_BITS = 24
OUI_MASK = 0xFFFFFF

_LOCAL_BIT = 1 << 41  # U/L bit: second-lowest bit of the first octet
_MULTICAST_BIT = 1 << 40  # I/G bit: lowest bit of the first octet


def _check_mac(mac: int) -> None:
    if not 0 <= mac <= MAC_MAX:
        raise ValueError(f"MAC out of range: {mac:#x}")


def format_mac(mac: int, sep: str = ":") -> str:
    """Format a MAC int as ``aa:bb:cc:dd:ee:ff``."""
    _check_mac(mac)
    octets = [(mac >> (40 - 8 * i)) & 0xFF for i in range(6)]
    return sep.join(f"{o:02x}" for o in octets)


def parse_mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` or ``aa-bb-...`` or bare hex to an int."""
    cleaned = text.strip().replace("-", ":").lower()
    if ":" in cleaned:
        parts = cleaned.split(":")
        if len(parts) != 6:
            raise ValueError(f"expected 6 octets in {text!r}")
        mac = 0
        for part in parts:
            value = int(part, 16)
            if not 0 <= value <= 0xFF:
                raise ValueError(f"octet out of range in {text!r}")
            mac = (mac << 8) | value
        return mac
    mac = int(cleaned, 16)
    _check_mac(mac)
    return mac


def oui_of(mac: int) -> int:
    """Return the 24-bit OUI (manufacturer prefix) of *mac*."""
    _check_mac(mac)
    return mac >> OUI_BITS


def format_oui(oui: int, sep: str = ":") -> str:
    """Format a 24-bit OUI as ``aa:bb:cc``."""
    if not 0 <= oui <= OUI_MASK:
        raise ValueError(f"OUI out of range: {oui:#x}")
    octets = [(oui >> (16 - 8 * i)) & 0xFF for i in range(3)]
    return sep.join(f"{o:02x}" for o in octets)


def parse_oui(text: str) -> int:
    """Parse ``aa:bb:cc`` / ``aa-bb-cc`` / bare hex to a 24-bit OUI int."""
    cleaned = text.strip().replace("-", ":").lower()
    if ":" in cleaned:
        parts = cleaned.split(":")
        if len(parts) != 3:
            raise ValueError(f"expected 3 octets in {text!r}")
        oui = 0
        for part in parts:
            value = int(part, 16)
            if not 0 <= value <= 0xFF:
                raise ValueError(f"octet out of range in {text!r}")
            oui = (oui << 8) | value
        return oui
    oui = int(cleaned, 16)
    if not 0 <= oui <= OUI_MASK:
        raise ValueError(f"OUI out of range: {text!r}")
    return oui


def is_locally_administered(mac: int) -> bool:
    """True if the U/L bit marks this MAC as locally administered."""
    _check_mac(mac)
    return bool(mac & _LOCAL_BIT)


def is_multicast_mac(mac: int) -> bool:
    """True if the I/G bit marks this MAC as a group (multicast) address."""
    _check_mac(mac)
    return bool(mac & _MULTICAST_BIT)


def mac_from_oui(oui: int, serial: int) -> int:
    """Build a MAC from a 24-bit OUI and a 24-bit per-device serial."""
    if not 0 <= oui <= OUI_MASK:
        raise ValueError(f"OUI out of range: {oui:#x}")
    if not 0 <= serial <= OUI_MASK:
        raise ValueError(f"serial out of range: {serial:#x}")
    return (oui << OUI_BITS) | serial
