"""ICMPv6 message model (RFC 4443) and the probe-response record.

The paper's measurement primitive is: send an ICMPv6 Echo Request to an
address that (almost certainly) does not exist inside a customer's
delegated prefix, and harvest the error that comes back.  The error's
*source address* is the CPE's WAN interface -- the tracked identifier.

We model the message types and codes the paper reports observing
(Destination Unreachable with several codes, Time Exceeded), plus Echo
Request/Reply for completeness, and provide a wire-format encoder with a
real ICMPv6 checksum so the packet layer is honest even though the hot
simulation path exchanges the structured records directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.addr import format_addr


class IcmpType(enum.IntEnum):
    """ICMPv6 message types used in this study."""

    DEST_UNREACHABLE = 1
    PACKET_TOO_BIG = 2
    TIME_EXCEEDED = 3
    ECHO_REQUEST = 128
    ECHO_REPLY = 129


class IcmpCode(enum.IntEnum):
    """Codes for the types above (flattened; values overlap by design).

    The Destination Unreachable codes are the ones Section 3.1 lists as
    common CPE behaviours: No Route (0), Administratively Prohibited (1),
    and Address Unreachable (3).
    """

    NO_ROUTE = 0
    ADMIN_PROHIBITED = 1
    ADDR_UNREACHABLE = 3
    PORT_UNREACHABLE = 4
    HOP_LIMIT_EXCEEDED = 0
    DEFAULT = 0


# (type, code) pairs that reveal a periphery (CPE) response.
ERROR_SIGNATURES: tuple[tuple[IcmpType, IcmpCode], ...] = (
    (IcmpType.DEST_UNREACHABLE, IcmpCode.NO_ROUTE),
    (IcmpType.DEST_UNREACHABLE, IcmpCode.ADMIN_PROHIBITED),
    (IcmpType.DEST_UNREACHABLE, IcmpCode.ADDR_UNREACHABLE),
    (IcmpType.TIME_EXCEEDED, IcmpCode.HOP_LIMIT_EXCEEDED),
)


@dataclass(frozen=True, slots=True)
class Icmpv6Message:
    """A structured ICMPv6 message.

    ``quoted_target`` carries the destination of the original probe for
    error messages (RFC 4443 requires errors to embed the invoking
    packet); for echo messages it is zero.
    """

    icmp_type: IcmpType
    code: int
    source: int
    destination: int
    quoted_target: int = 0

    @property
    def is_error(self) -> bool:
        return self.icmp_type in (
            IcmpType.DEST_UNREACHABLE,
            IcmpType.PACKET_TOO_BIG,
            IcmpType.TIME_EXCEEDED,
        )

    def describe(self) -> str:
        return (
            f"{self.icmp_type.name}/{self.code} "
            f"from {format_addr(self.source)} to {format_addr(self.destination)}"
        )


@dataclass(frozen=True, slots=True)
class ProbeResponse:
    """What the attacker's scanner records for one responsive probe.

    This is the complete observable surface of the methodology: the probed
    target, the address that answered, the ICMPv6 type/code, and when.
    Inference code consumes these records only -- never simulator ground
    truth.
    """

    target: int
    source: int
    icmp_type: IcmpType
    code: int
    time: float

    @property
    def is_error(self) -> bool:
        return self.icmp_type != IcmpType.ECHO_REPLY

    def describe(self) -> str:
        return (
            f"probe {format_addr(self.target)} -> "
            f"{self.icmp_type.name}/{self.code} from {format_addr(self.source)} "
            f"at t={self.time:.3f}h"
        )


def checksum(data: bytes) -> int:
    """RFC 1071 one's-complement checksum over *data*."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _pseudo_header(source: int, destination: int, length: int) -> bytes:
    """IPv6 pseudo-header for upper-layer checksums (RFC 8200 section 8.1)."""
    return (
        source.to_bytes(16, "big")
        + destination.to_bytes(16, "big")
        + length.to_bytes(4, "big")
        + b"\x00\x00\x00"
        + bytes([58])  # next header = ICMPv6
    )


def encode(message: Icmpv6Message, payload: bytes = b"") -> bytes:
    """Encode *message* to ICMPv6 wire format with a valid checksum."""
    body = payload
    if message.is_error and message.quoted_target:
        # Minimal invoking-packet quotation: just the original destination.
        body = message.quoted_target.to_bytes(16, "big") + payload
    header = bytes([int(message.icmp_type), int(message.code), 0, 0])
    packet = header + body
    pseudo = _pseudo_header(message.source, message.destination, len(packet))
    csum = checksum(pseudo + packet)
    return header[:2] + csum.to_bytes(2, "big") + body


def decode(source: int, destination: int, data: bytes) -> Icmpv6Message:
    """Decode wire bytes back to a structured message, verifying checksum."""
    if len(data) < 4:
        raise ValueError("ICMPv6 packet too short")
    pseudo = _pseudo_header(source, destination, len(data))
    zeroed = data[:2] + b"\x00\x00" + data[4:]
    expected = checksum(pseudo + zeroed)
    actual = (data[2] << 8) | data[3]
    if expected != actual:
        raise ValueError(f"bad ICMPv6 checksum: {actual:#06x} != {expected:#06x}")
    icmp_type = IcmpType(data[0])
    code = data[1]
    quoted = 0
    body = data[4:]
    if icmp_type in (IcmpType.DEST_UNREACHABLE, IcmpType.TIME_EXCEEDED) and len(body) >= 16:
        quoted = int.from_bytes(body[:16], "big")
    return Icmpv6Message(
        icmp_type=icmp_type,
        code=code,
        source=source,
        destination=destination,
        quoted_target=quoted,
    )
