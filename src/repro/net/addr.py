"""Integer-based IPv6 address arithmetic and the :class:`Prefix` value type.

Addresses are plain Python ints in ``[0, 2**128)``.  All hot paths in the
scanner and simulator operate on these ints directly; text formats appear
only at the presentation edge.  This module intentionally avoids the stdlib
``ipaddress`` types: they allocate an object per address, which is far too
slow for simulated scans that touch millions of targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

ADDR_BITS = 128
ADDR_MAX = (1 << ADDR_BITS) - 1

IID_BITS = 64
IID_MASK = (1 << IID_BITS) - 1


def iid_of(addr: int) -> int:
    """Return the low 64 bits (the interface identifier) of *addr*."""
    return addr & IID_MASK


def high64(addr: int) -> int:
    """Return the high 64 bits (the /64 network) of *addr*.

    This is the ``addr >> 64`` quantity used by Algorithms 1 and 2 in the
    paper to measure how far a periphery address travels.
    """
    return addr >> IID_BITS


def with_iid(net64: int, iid: int) -> int:
    """Combine a /64 network number and an IID into a full address."""
    if not 0 <= net64 <= IID_MASK:
        raise ValueError(f"net64 out of range: {net64:#x}")
    if not 0 <= iid <= IID_MASK:
        raise ValueError(f"iid out of range: {iid:#x}")
    return (net64 << IID_BITS) | iid


def _check_addr(addr: int) -> None:
    if not 0 <= addr <= ADDR_MAX:
        raise ValueError(f"address out of range: {addr:#x}")


def format_addr(addr: int) -> str:
    """Format *addr* as canonical compressed lower-case IPv6 text.

    Implements RFC 5952 zero compression: the longest run of zero groups
    (length >= 2, leftmost on ties) collapses to ``::``.
    """
    _check_addr(addr)
    groups = [(addr >> (112 - 16 * i)) & 0xFFFF for i in range(8)]

    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, g in enumerate(groups):
        if g == 0:
            if run_start < 0:
                run_start, run_len = i, 1
            else:
                run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0

    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)

    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


def parse_addr(text: str) -> int:
    """Parse IPv6 text (with optional ``::`` compression) to an int."""
    text = text.strip()
    if text.count("::") > 1:
        raise ValueError(f"multiple '::' in {text!r}")

    def parse_groups(part: str) -> list[int]:
        if not part:
            return []
        groups = []
        for piece in part.split(":"):
            if not piece:
                raise ValueError(f"empty group in {text!r}")
            value = int(piece, 16)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"group out of range in {text!r}")
            groups.append(value)
        return groups

    if "::" in text:
        left, right = text.split("::")
        head, tail = parse_groups(left), parse_groups(right)
        fill = 8 - len(head) - len(tail)
        if fill < 1:
            raise ValueError(f"'::' expands to nothing in {text!r}")
        groups = head + [0] * fill + tail
    else:
        groups = parse_groups(text)

    if len(groups) != 8:
        raise ValueError(f"expected 8 groups in {text!r}, got {len(groups)}")

    addr = 0
    for g in groups:
        addr = (addr << 16) | g
    return addr


@dataclass(frozen=True, slots=True)
class Prefix:
    """An IPv6 prefix: a network int plus prefix length.

    The network is canonicalized (host bits cleared) at construction, so two
    prefixes covering the same block always compare equal and hash together.
    """

    network: int
    plen: int

    def __post_init__(self) -> None:
        if not 0 <= self.plen <= ADDR_BITS:
            raise ValueError(f"plen out of range: {self.plen}")
        _check_addr(self.network)
        canonical = self.network & self.mask
        if canonical != self.network:
            object.__setattr__(self, "network", canonical)

    @classmethod
    def parse(cls, text: str) -> Prefix:
        """Parse ``"2001:db8::/32"`` notation."""
        addr_text, _, plen_text = text.partition("/")
        if not plen_text:
            raise ValueError(f"missing '/len' in {text!r}")
        return cls(parse_addr(addr_text), int(plen_text))

    @classmethod
    def containing(cls, addr: int, plen: int) -> Prefix:
        """Return the length-*plen* prefix that contains *addr*."""
        return cls(addr, plen)

    @property
    def mask(self) -> int:
        return (ADDR_MAX << (ADDR_BITS - self.plen)) & ADDR_MAX

    @property
    def host_bits(self) -> int:
        return ADDR_BITS - self.plen

    @property
    def num_addresses(self) -> int:
        return 1 << self.host_bits

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network | (self.num_addresses - 1)

    def __contains__(self, addr: int) -> bool:
        return self.network <= addr <= self.last

    def contains_prefix(self, other: Prefix) -> bool:
        """True if *other* is equal to or nested inside this prefix."""
        return other.plen >= self.plen and other.network in self

    def num_subnets(self, plen: int) -> int:
        """Number of length-*plen* subnets inside this prefix."""
        if plen < self.plen:
            raise ValueError(f"/{plen} is larger than /{self.plen}")
        return 1 << (plen - self.plen)

    def subnet(self, index: int, plen: int) -> Prefix:
        """Return the *index*-th length-*plen* subnet of this prefix."""
        count = self.num_subnets(plen)
        if not 0 <= index < count:
            raise IndexError(f"subnet index {index} out of {count}")
        return Prefix(self.network | (index << (ADDR_BITS - plen)), plen)

    def subnet_index(self, addr: int, plen: int) -> int:
        """Return which length-*plen* subnet of this prefix contains *addr*."""
        if addr not in self:
            raise ValueError(f"{format_addr(addr)} not in {self}")
        return (addr - self.network) >> (ADDR_BITS - plen)

    def subnets(self, plen: int):
        """Yield every length-*plen* subnet, in address order."""
        step = 1 << (ADDR_BITS - plen)
        base = self.network
        for i in range(self.num_subnets(plen)):
            yield Prefix(base + i * step, plen)

    def random_addr(self, rng: random.Random) -> int:
        """A uniformly random address inside the prefix."""
        return self.network | rng.getrandbits(self.host_bits)

    def random_subnet(self, plen: int, rng: random.Random) -> Prefix:
        """A uniformly random length-*plen* subnet of this prefix."""
        return self.subnet(rng.randrange(self.num_subnets(plen)), plen)

    def __str__(self) -> str:
        return f"{format_addr(self.network)}/{self.plen}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"
