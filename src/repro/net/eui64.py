"""EUI-64 interface identifiers: the leak at the heart of the paper.

Modified EUI-64 (RFC 4291 appendix A) derives a 64-bit IID from a 48-bit
MAC address by

1. splitting the MAC into OUI (high 24 bits) and NIC (low 24 bits) halves,
2. inserting the literal bytes ``ff:fe`` between them, and
3. flipping the Universal/Local bit (bit 1 of the first octet, which lands
   at bit 57 of the IID).

The transform is a bijection on MACs, so any observer of an EUI-64 IPv6
address can recover the device's exact hardware MAC -- manufacturer OUI
included -- by reversing it.  That static, globally unique identifier is
what lets the paper's attacker follow a CPE across prefix rotations.
"""

from __future__ import annotations

from repro.net.mac import MAC_MAX

_FFFE = 0xFFFE
_UL_BIT = 1 << 57  # the MAC's U/L bit, once shifted into IID position

_NIC_MASK = 0xFFFFFF
_OUI_SHIFT = 40  # MAC bits above the NIC half
_IID_OUI_SHIFT = 40  # IID bits above the ff:fe + NIC tail
_FFFE_SHIFT = 24


def mac_to_eui64_iid(mac: int) -> int:
    """Convert a 48-bit MAC int to its modified EUI-64 IID."""
    if not 0 <= mac <= MAC_MAX:
        raise ValueError(f"MAC out of range: {mac:#x}")
    oui = mac >> 24
    nic = mac & _NIC_MASK
    iid = (oui << _IID_OUI_SHIFT) | (_FFFE << _FFFE_SHIFT) | nic
    return iid ^ _UL_BIT


def is_eui64_iid(iid: int) -> bool:
    """True if *iid* has the ``ff:fe`` marker of modified EUI-64.

    This is the same structural test the paper applies to response
    addresses (``isEUI`` in Algorithms 1 and 2): bytes 4-5 of the IID are
    ``0xff, 0xfe``.  A random privacy-extension IID matches with
    probability 2^-16, which the paper treats as negligible.
    """
    if not 0 <= iid < (1 << 64):
        return False
    return (iid >> _FFFE_SHIFT) & 0xFFFF == _FFFE


def eui64_iid_to_mac(iid: int) -> int:
    """Recover the MAC embedded in an EUI-64 IID.

    Raises :class:`ValueError` if *iid* lacks the ``ff:fe`` marker; callers
    should test with :func:`is_eui64_iid` first when the input is untrusted.
    """
    if not is_eui64_iid(iid):
        raise ValueError(f"not an EUI-64 IID: {iid:#018x}")
    flipped = iid ^ _UL_BIT
    oui = flipped >> _IID_OUI_SHIFT
    nic = flipped & _NIC_MASK
    return (oui << 24) | nic


def addr_is_eui64(addr: int) -> bool:
    """True if the full 128-bit address carries an EUI-64 IID."""
    return is_eui64_iid(addr & ((1 << 64) - 1))


def addr_to_mac(addr: int) -> int:
    """Recover the MAC embedded in a full EUI-64 IPv6 address."""
    return eui64_iid_to_mac(addr & ((1 << 64) - 1))
