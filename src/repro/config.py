"""Process configuration: every ``REPRO_*`` knob behind one resolver.

The knobs used to live as ad-hoc ``os.environ`` reads scattered across
modules; they now resolve here, once, with one precedence rule --
**explicit keyword arguments win over environment variables win over
defaults** -- and one documented table.  Modules call :func:`current`
at their decision points (construction, format resolution) rather than
touching ``os.environ`` directly, so tests and embedders can override
any knob per call without mutating process state.

Environment table
-----------------

===============================  ==========================================
Variable                         Meaning
===============================  ==========================================
``REPRO_STORE_BACKEND``          Default :class:`~repro.store.StoreBackend`
                                 for every ``ObservationStore()`` built
                                 without an explicit backend: ``object`` /
                                 ``columnar`` / ``sqlite``.  Unset: columnar
                                 when numpy is enabled, else object.
``REPRO_CHECKPOINT_FORMAT``      Checkpoint write format: ``json``
                                 (canonical) or ``binary`` (columnar delta
                                 segments).  Reads always sniff the file.
``REPRO_STREAM_FORCE_FALLBACK``  Any non-empty value forces the pure-Python
                                 ingest kernel even when numpy imports (the
                                 CI fallback-equivalence hook).
``REPRO_LOG_JSON``               ``1``/``true``/``yes``: JSON-lines log
                                 records instead of human one-liners.
``REPRO_LOG_LEVEL``              Default level for :func:`repro.util.get_logger`
                                 (``INFO`` when unset).
``REPRO_FABRIC_HEARTBEAT``       Socket-fabric heartbeat interval, seconds
                                 (default 2).
``REPRO_FABRIC_HEARTBEAT_TIMEOUT``  Seconds of worker silence before the
                                 master declares it dead (default 10).
``REPRO_FABRIC_CONNECT_TIMEOUT`` Seconds the master waits for workers to
                                 connect and complete the hello handshake,
                                 and a worker waits for its welcome
                                 (default 10).
``REPRO_FABRIC_MAX_FRAME``       Largest accepted fabric frame payload,
                                 bytes (default 256 MiB); oversized frames
                                 are rejected before allocation.
``REPRO_FABRIC_AUTHKEY``         Shared secret for the fabric's mutual
                                 HMAC challenge-response handshake.  Must
                                 match on the master and every worker box;
                                 unset, the master generates a random key
                                 (exposed as ``SocketTransport.authkey``)
                                 and hands it to the workers it spawns
                                 itself.
``REPRO_FABRIC_JOURNAL_LIMIT``   Requeue-journal bound, in journaled rows
                                 across all workers (default 4,000,000;
                                 ``0`` = unbounded).  Past the bound the
                                 dispatcher drops the journals and a later
                                 worker loss aborts to the last committed
                                 checkpoint instead of requeueing.
``REPRO_REPLICATE_BIND``         Endpoint a binary-checkpoint campaign's
                                 segment shipper listens on for followers
                                 (``tcp://host:port``).  Unset: replication
                                 off, zero cost.
``REPRO_REPLICATE_AUTHKEY``      Shared secret for the replication
                                 handshake (same mutual HMAC scheme as the
                                 fabric).  Unset, the shipper falls back to
                                 ``REPRO_FABRIC_AUTHKEY``, then generates a
                                 random key (``SegmentShipper.authkey``).
``REPRO_REPLICATE_OUTBOX``       Per-follower outbox bound, in queued
                                 segments (default 64).  A follower that
                                 falls further behind is degraded to a
                                 full-chain resync instead of unbounded
                                 buffering.
``REPRO_REPLICATE_CONNECT_TIMEOUT``  Seconds a follower waits for the
                                 primary (per attempt), and the shipper
                                 waits for a subscriber's handshake
                                 (default 10).
===============================  ==========================================

Empty-string values count as *unset* (the CI matrix exports ``""`` for
knobs a leg leaves at default).  :func:`current` re-reads the
environment on every call -- configuration is resolved at use time,
never frozen at import, so monkeypatched tests and late ``os.environ``
edits behave as expected.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

ENV_STORE_BACKEND = "REPRO_STORE_BACKEND"
ENV_CHECKPOINT_FORMAT = "REPRO_CHECKPOINT_FORMAT"
ENV_FORCE_FALLBACK = "REPRO_STREAM_FORCE_FALLBACK"
ENV_LOG_JSON = "REPRO_LOG_JSON"
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"
ENV_FABRIC_HEARTBEAT = "REPRO_FABRIC_HEARTBEAT"
ENV_FABRIC_HEARTBEAT_TIMEOUT = "REPRO_FABRIC_HEARTBEAT_TIMEOUT"
ENV_FABRIC_CONNECT_TIMEOUT = "REPRO_FABRIC_CONNECT_TIMEOUT"
ENV_FABRIC_MAX_FRAME = "REPRO_FABRIC_MAX_FRAME"
ENV_FABRIC_AUTHKEY = "REPRO_FABRIC_AUTHKEY"
ENV_FABRIC_JOURNAL_LIMIT = "REPRO_FABRIC_JOURNAL_LIMIT"
ENV_REPLICATE_BIND = "REPRO_REPLICATE_BIND"
ENV_REPLICATE_AUTHKEY = "REPRO_REPLICATE_AUTHKEY"
ENV_REPLICATE_OUTBOX = "REPRO_REPLICATE_OUTBOX"
ENV_REPLICATE_CONNECT_TIMEOUT = "REPRO_REPLICATE_CONNECT_TIMEOUT"


@dataclass(frozen=True)
class Settings:
    """One resolved configuration snapshot (see the module table)."""

    store_backend: str | None = None
    checkpoint_format: str | None = None
    force_fallback: bool = False
    log_json: bool = False
    log_level: str | None = None
    fabric_heartbeat_seconds: float = 2.0
    fabric_heartbeat_timeout: float = 10.0
    fabric_connect_timeout: float = 10.0
    fabric_max_frame_bytes: int = 256 * 1024 * 1024
    fabric_authkey: str | None = None
    fabric_journal_limit_rows: int = 4_000_000
    replicate_bind: str | None = None
    replicate_authkey: str | None = None
    replicate_outbox_frames: int = 64
    replicate_connect_timeout: float = 10.0


_FIELD_NAMES = {f.name for f in fields(Settings)}


def _env_str(name: str) -> str | None:
    """A string knob; empty counts as unset."""
    value = os.environ.get(name)
    return value if value else None


def _env_truthy(name: str) -> bool:
    """``1``/``true``/``yes`` (case-insensitive) means on."""
    return (os.environ.get(name) or "").lower() in ("1", "true", "yes")


def _env_float(name: str, default: float) -> float:
    value = _env_str(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"{name}={value!r}: expected a number") from None


def _env_int(name: str, default: int) -> int:
    value = _env_str(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name}={value!r}: expected an integer") from None


def current(**overrides) -> Settings:
    """Resolve the live configuration.

    Keyword overrides (any :class:`Settings` field) win over the
    environment; ``None`` overrides mean "no opinion" and fall through
    to the environment/default -- so call sites can pass their own
    optional parameters straight down.
    """
    values = {
        "store_backend": _env_str(ENV_STORE_BACKEND),
        "checkpoint_format": _env_str(ENV_CHECKPOINT_FORMAT),
        # Presence is the switch (any non-empty value), matching the
        # historical semantics the CI no-numpy leg relies on.
        "force_fallback": bool(os.environ.get(ENV_FORCE_FALLBACK)),
        "log_json": _env_truthy(ENV_LOG_JSON),
        "log_level": _env_str(ENV_LOG_LEVEL),
        "fabric_heartbeat_seconds": _env_float(ENV_FABRIC_HEARTBEAT, 2.0),
        "fabric_heartbeat_timeout": _env_float(ENV_FABRIC_HEARTBEAT_TIMEOUT, 10.0),
        "fabric_connect_timeout": _env_float(ENV_FABRIC_CONNECT_TIMEOUT, 10.0),
        "fabric_max_frame_bytes": _env_int(
            ENV_FABRIC_MAX_FRAME, Settings.fabric_max_frame_bytes
        ),
        "fabric_authkey": _env_str(ENV_FABRIC_AUTHKEY),
        "fabric_journal_limit_rows": _env_int(
            ENV_FABRIC_JOURNAL_LIMIT, Settings.fabric_journal_limit_rows
        ),
        "replicate_bind": _env_str(ENV_REPLICATE_BIND),
        "replicate_authkey": _env_str(ENV_REPLICATE_AUTHKEY),
        "replicate_outbox_frames": _env_int(
            ENV_REPLICATE_OUTBOX, Settings.replicate_outbox_frames
        ),
        "replicate_connect_timeout": _env_float(
            ENV_REPLICATE_CONNECT_TIMEOUT, Settings.replicate_connect_timeout
        ),
    }
    for key, value in overrides.items():
        if key not in _FIELD_NAMES:
            raise TypeError(f"unknown setting {key!r}")
        if value is not None:
            values[key] = value
    return Settings(**values)


__all__ = [
    "ENV_CHECKPOINT_FORMAT",
    "ENV_FABRIC_AUTHKEY",
    "ENV_FABRIC_CONNECT_TIMEOUT",
    "ENV_FABRIC_HEARTBEAT",
    "ENV_FABRIC_HEARTBEAT_TIMEOUT",
    "ENV_FABRIC_JOURNAL_LIMIT",
    "ENV_FABRIC_MAX_FRAME",
    "ENV_FORCE_FALLBACK",
    "ENV_LOG_JSON",
    "ENV_LOG_LEVEL",
    "ENV_REPLICATE_AUTHKEY",
    "ENV_REPLICATE_BIND",
    "ENV_REPLICATE_CONNECT_TIMEOUT",
    "ENV_REPLICATE_OUTBOX",
    "ENV_STORE_BACKEND",
    "Settings",
    "current",
]
