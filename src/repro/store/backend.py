"""The :class:`StoreBackend` protocol and the two in-memory backends.

A backend owns the observation corpus.  It must preserve insertion
(stream) order, serve both column and object views of the same rows,
and serialize to the canonical checkpoint rows
(``[[day, t_seconds, target, source], ...]``) so checkpoints are
byte-identical whichever backend produced them.

``ObjectBackend`` keeps the pre-redesign layout -- a list of
:class:`~repro.core.records.ProbeObservation` plus per-IID/per-day
index lists -- and is the stdlib fallback.  ``ColumnarBackend`` holds
the six :class:`~repro.store.batch.ColumnBatch` columns natively with
integer-row indexes, so columnar consumers (the streaming engines' numpy
kernel) re-read the corpus without any per-row Python work.  The
disk-backed third backend lives in :mod:`repro.store.sqlite`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, runtime_checkable

from repro.net.addr import IID_MASK
from repro.net.eui64 import is_eui64_iid
from repro.store.batch import ColumnBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.records import ProbeObservation

#: Default row count per :meth:`StoreBackend.scan_columns` chunk --
#: large enough to amortize per-chunk fixed costs (numpy array builds,
#: SQL cursor round-trips), small enough to bound transient memory when
#: a disk-backed corpus is bigger than RAM.
SCAN_CHUNK_ROWS = 16384


@dataclass(frozen=True)
class StoreStats:
    """Cheap corpus counters every backend maintains incrementally."""

    backend: str
    rows: int
    eui_rows: int
    days: int


@runtime_checkable
class StoreBackend(Protocol):
    """What :class:`~repro.core.records.ObservationStore` requires.

    Append paths come in both currencies -- columns and observation
    objects -- so each backend implements its native one directly and
    converts for the other (:class:`ColumnBatch` makes either direction
    a one-liner).  All scans and slices return rows in insertion order.
    """

    @property
    def rows(self) -> int:
        """Total observations held (must be O(1))."""
        ...

    def append_columns(self, batch: ColumnBatch) -> int:
        """Append a column batch; returns rows appended."""
        ...

    def append_observations(self, observations: "list[ProbeObservation]") -> int:
        """Append observation objects; returns rows appended."""
        ...

    def scan_columns(self, chunk_rows: int = SCAN_CHUNK_ROWS) -> Iterator[ColumnBatch]:
        """The whole corpus as bounded column chunks, insertion order."""
        ...

    def scan_observations(
        self, chunk_rows: int = SCAN_CHUNK_ROWS
    ) -> "Iterator[list[ProbeObservation]]":
        """The whole corpus as bounded object chunks, insertion order."""
        ...

    def day_slice(self, day: int) -> ColumnBatch:
        """Every observation of *day*, insertion order."""
        ...

    def iid_history(self, iid: int) -> ColumnBatch:
        """Every observation whose source IID is *iid*, insertion order."""
        ...

    def days(self) -> list[int]:
        """Days with at least one observation, ascending."""
        ...

    def eui_iids(self) -> set[int]:
        """Distinct EUI-64 source IIDs seen so far."""
        ...

    def unique_sources(self) -> set[int]:
        """Distinct 128-bit source addresses."""
        ...

    def unique_eui64_sources(self) -> set[int]:
        """Distinct 128-bit EUI-64 source addresses."""
        ...

    def stats(self) -> StoreStats: ...

    def snapshot(self) -> list[list]:
        """Checkpoint rows for the full corpus, insertion order.

        Must equal ``ColumnBatch.rows()`` of the concatenated scan --
        the byte-identity contract across backends.
        """
        ...

    def restore(self, rows: list[list]) -> int:
        """Converge the corpus on checkpoint rows; returns rows appended.

        The corpus after restore must equal *rows* exactly, whatever
        the backend already held: a held prefix is verified and kept
        (the incremental-resume contract -- disk backends skip the
        re-insert entirely), a held suffix beyond the checkpoint is
        discarded (the resumed stream replays it), and a corpus that
        disagrees with *rows* at the boundary raises ``ValueError``.
        """
        ...

    def close(self) -> None:
        """Release backend resources (no-op for in-memory backends)."""
        ...


def _chunked(items: list, chunk_rows: int) -> Iterator[list]:
    for start in range(0, len(items), chunk_rows):
        yield items[start : start + chunk_rows]


def _verify_prefix(backend, rows: list[list], keep: int) -> None:
    """Raise unless the backend's first *keep* rows equal ``rows[:keep]``.

    The restore soundness check, shared by every backend: a chunked
    scan (bounded memory, O(held) row reads -- still no re-inserts),
    compared value-exact so reattaching the wrong corpus can never
    silently fork the stream.
    """
    offset = 0
    for batch in backend.scan_columns():
        if offset >= keep:
            break
        chunk = batch.rows()
        take = min(len(chunk), keep - offset)
        if chunk[:take] != rows[offset : offset + take]:
            for i in range(take):
                if chunk[i] != rows[offset + i]:
                    raise ValueError(
                        f"{backend.name} store diverges from the checkpoint"
                        f" at row {offset + i}: not the same corpus"
                    )
        offset += take


def _restore_plan(backend, rows: list[list]) -> tuple[bool, int]:
    """Shared restore convergence for the in-memory backends.

    Returns ``(reset, held)``: *reset* means the backend must rebuild
    from *rows* in full (it held rows beyond the checkpoint, which the
    resumed stream will replay); otherwise append ``rows[held:]``.
    Raises when the held corpus disagrees with *rows* anywhere in the
    shared prefix -- the same contract :meth:`SqliteBackend.restore`
    enforces.
    """
    held = backend.rows
    _verify_prefix(backend, rows, min(held, len(rows)))
    return held > len(rows), held


class ObjectBackend:
    """The classic stdlib layout: observation objects plus index lists.

    Byte-compatible with the pre-redesign ``ObservationStore`` -- same
    structures, same insertion-order guarantees -- and the default on
    installs without numpy.  Object reads are free; column reads pay
    one conversion pass.
    """

    name = "object"
    #: Hint for dual-currency producers (e.g. ``add_responses``): build
    #: observation objects, this backend stores them as-is.
    prefers_columns = False

    def __init__(self) -> None:
        self._observations: "list[ProbeObservation]" = []
        self._by_iid: "dict[int, list[ProbeObservation]]" = defaultdict(list)
        self._by_day: "dict[int, list[ProbeObservation]]" = defaultdict(list)
        self._eui_iids: set[int] = set()
        self._eui_rows = 0

    @property
    def rows(self) -> int:
        return len(self._observations)

    def append_observations(self, observations: "list[ProbeObservation]") -> int:
        self._observations.extend(observations)
        by_iid = self._by_iid
        by_day = self._by_day
        eui_iids = self._eui_iids
        for observation in observations:
            iid = observation.source & IID_MASK
            by_iid[iid].append(observation)
            by_day[observation.day].append(observation)
            if iid in eui_iids:
                self._eui_rows += 1
            elif is_eui64_iid(iid):
                eui_iids.add(iid)
                self._eui_rows += 1
        return len(observations)

    def append_columns(self, batch: ColumnBatch) -> int:
        return self.append_observations(batch.observations())

    def scan_columns(self, chunk_rows: int = SCAN_CHUNK_ROWS) -> Iterator[ColumnBatch]:
        for chunk in _chunked(self._observations, chunk_rows):
            yield ColumnBatch.from_observations(chunk)

    def scan_observations(
        self, chunk_rows: int = SCAN_CHUNK_ROWS
    ) -> "Iterator[list[ProbeObservation]]":
        yield from _chunked(self._observations, chunk_rows)

    def day_slice(self, day: int) -> ColumnBatch:
        return ColumnBatch.from_observations(self._by_day.get(day, []))

    def day_observations(self, day: int) -> "list[ProbeObservation]":
        return list(self._by_day.get(day, ()))

    def iid_history(self, iid: int) -> ColumnBatch:
        return ColumnBatch.from_observations(self._by_iid.get(iid, []))

    def iid_observations(self, iid: int) -> "list[ProbeObservation]":
        return list(self._by_iid.get(iid, ()))

    def days(self) -> list[int]:
        return sorted(self._by_day)

    def eui_iids(self) -> set[int]:
        return set(self._eui_iids)

    def unique_sources(self) -> set[int]:
        return {o.source for o in self._observations}

    def unique_eui64_sources(self) -> set[int]:
        return {o.source for o in self._observations if o.is_eui64}

    def stats(self) -> StoreStats:
        return StoreStats(
            backend=self.name,
            rows=len(self._observations),
            eui_rows=self._eui_rows,
            days=len(self._by_day),
        )

    def snapshot(self) -> list[list]:
        return [
            [o.day, o.t_seconds, o.target, o.source] for o in self._observations
        ]

    def restore(self, rows: list[list]) -> int:
        from repro.core.records import ProbeObservation

        reset, held = _restore_plan(self, rows)
        if reset:
            # Rebuild from the checkpoint; the re-insert of verified
            # rows is an implementation detail, not an append.
            self.__init__()
            self.restore(rows)
            return 0
        return self.append_observations(
            [
                ProbeObservation(day=day, t_seconds=t, target=target, source=source)
                for day, t, target, source in rows[held:]
            ]
        )

    def close(self) -> None:
        pass


class ColumnarBackend:
    """Native column storage: one growing :class:`ColumnBatch` + indexes.

    The ``[fast]`` default.  Appending a column batch is six list
    ``extend`` calls; re-reading the corpus for the streaming engines'
    numpy kernel slices those same lists, so the per-batch
    object-to-column conversion the PR-4 kernel paid disappears
    entirely.  Indexes are per-day and per-IID row-number lists --
    ints, never observation objects.
    """

    name = "columnar"
    #: Producers that can emit either currency should emit columns.
    prefers_columns = True

    def __init__(self) -> None:
        self._cols = ColumnBatch()
        self._day_rows: dict[int, list[int]] = defaultdict(list)
        self._iid_rows: dict[int, list[int]] = defaultdict(list)
        self._eui_iids: set[int] = set()
        self._eui_rows = 0

    @property
    def rows(self) -> int:
        return len(self._cols)

    def append_columns(self, batch: ColumnBatch) -> int:
        base = len(self._cols)
        self._cols.extend(batch)
        day_rows = self._day_rows
        iid_rows = self._iid_rows
        eui_iids = self._eui_iids
        for offset, (day, iid) in enumerate(zip(batch.day, batch.src_lo)):
            row = base + offset
            day_rows[day].append(row)
            iid_rows[iid].append(row)
            if iid in eui_iids:
                self._eui_rows += 1
            elif is_eui64_iid(iid):
                eui_iids.add(iid)
                self._eui_rows += 1
        return len(batch)

    def append_observations(self, observations: "list[ProbeObservation]") -> int:
        return self.append_columns(ColumnBatch.from_observations(observations))

    def scan_columns(self, chunk_rows: int = SCAN_CHUNK_ROWS) -> Iterator[ColumnBatch]:
        cols = self._cols
        for start in range(0, len(cols), chunk_rows):
            yield cols.slice(start, start + chunk_rows)

    def scan_observations(
        self, chunk_rows: int = SCAN_CHUNK_ROWS
    ) -> "Iterator[list[ProbeObservation]]":
        for batch in self.scan_columns(chunk_rows):
            yield batch.observations()

    def _rows_batch(self, row_numbers: Iterable[int]) -> ColumnBatch:
        cols = self._cols.columns
        return ColumnBatch(
            *([column[row] for row in row_numbers] for column in cols)
        )

    def day_slice(self, day: int) -> ColumnBatch:
        return self._rows_batch(self._day_rows.get(day, ()))

    def iid_history(self, iid: int) -> ColumnBatch:
        return self._rows_batch(self._iid_rows.get(iid, ()))

    def days(self) -> list[int]:
        return sorted(self._day_rows)

    def eui_iids(self) -> set[int]:
        return set(self._eui_iids)

    def unique_sources(self) -> set[int]:
        cols = self._cols
        return {
            (hi << 64) | lo for hi, lo in zip(cols.src_hi, cols.src_lo)
        }

    def unique_eui64_sources(self) -> set[int]:
        sources: set[int] = set()
        src_hi = self._cols.src_hi
        src_lo = self._cols.src_lo
        for iid in self._eui_iids:
            for row in self._iid_rows[iid]:
                sources.add((src_hi[row] << 64) | src_lo[row])
        return sources

    def stats(self) -> StoreStats:
        return StoreStats(
            backend=self.name,
            rows=len(self._cols),
            eui_rows=self._eui_rows,
            days=len(self._day_rows),
        )

    def snapshot(self) -> list[list]:
        return self._cols.rows()

    def snapshot_columns(self, start_row: int = 0) -> ColumnBatch:
        """Checkpoint columns from *start_row* on -- a pure slice."""
        return self._cols.slice(start_row)

    def restore(self, rows: list[list]) -> int:
        reset, held = _restore_plan(self, rows)
        if reset:
            # Rebuild from the checkpoint; the re-insert of verified
            # rows is an implementation detail, not an append.
            self.__init__()
            self.restore(rows)
            return 0
        return self.append_columns(ColumnBatch.from_rows(rows[held:]))

    def close(self) -> None:
        pass
