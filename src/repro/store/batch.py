"""``ColumnBatch``: the columnar unit of observation transfer.

One batch of responsive probes as six parallel flat buffers -- day,
timestamp, and the 128-bit target/source addresses split into (hi, lo)
uint64 halves.  This is the lingua franca of the storage redesign:

* the scanner emits it (:meth:`repro.scan.zmap.ScanStream.column_batches`),
* every :class:`~repro.store.backend.StoreBackend` appends and scans it,
* the streaming engines consume it without per-observation conversion
  (:meth:`~repro.stream.engine.StreamEngine.ingest_columns`), and
* the multiprocess dispatcher ships it to workers as-is -- flat lists
  pickle in one pass, with no per-row tuple objects to build or walk.

The day and address columns are stdlib :mod:`array` buffers (``'q'`` /
``'Q'``), so the type works on a stdlib-only install, every read
indexes back to an exact Python int, pickling for the worker pipes is
one machine-byte blob per column, and -- when numpy is available --
the columnar kernel's ``np.array(column, dtype=...)`` call is a C
memcpy through the buffer protocol instead of a per-int conversion
walk.  The timestamp column stays a plain list: timestamps never enter
the numpy kernel, and a list preserves the int-vs-float identity of
each value, which the cross-backend checkpoint byte contract requires.

The (hi, lo) split exists because numpy cannot hold 128-bit ints: hi is
``addr >> 64`` (the /64 network number Algorithms 1 and 2 reason about)
and lo is ``addr & MASK64`` (the IID for sources).  Recombination is
``(hi << 64) | lo``, exact for every address.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.simnet.clock import day_of, hours

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.records import ProbeObservation

MASK64 = (1 << 64) - 1

DAY_TYPECODE = "q"  # signed 64-bit: days
U64_TYPECODE = "Q"  # unsigned 64-bit: address halves


class ColumnBatch:
    """A batch of observations as six parallel columns.

    ``day`` is an ``array('q')``, ``t_seconds`` a list of timestamps,
    and ``tgt_hi``/``tgt_lo``/``src_hi``/``src_lo`` are ``array('Q')``
    buffers holding the uint64 halves of the target and source
    addresses.  (Any same-typed sequence of ints works in their place
    -- slices and index lists produce such columns.)  All six always
    share one length; rows keep their insertion (stream) order.
    """

    __slots__ = ("day", "t_seconds", "tgt_hi", "tgt_lo", "src_hi", "src_lo")

    def __init__(
        self,
        day=None,
        t_seconds: list[float] | None = None,
        tgt_hi=None,
        tgt_lo=None,
        src_hi=None,
        src_lo=None,
    ) -> None:
        self.day = day if day is not None else array(DAY_TYPECODE)
        self.t_seconds = t_seconds if t_seconds is not None else []
        self.tgt_hi = tgt_hi if tgt_hi is not None else array(U64_TYPECODE)
        self.tgt_lo = tgt_lo if tgt_lo is not None else array(U64_TYPECODE)
        self.src_hi = src_hi if src_hi is not None else array(U64_TYPECODE)
        self.src_lo = src_lo if src_lo is not None else array(U64_TYPECODE)

    def __len__(self) -> int:
        return len(self.day)

    def __repr__(self) -> str:
        return f"ColumnBatch({len(self)} rows)"

    @property
    def columns(self) -> tuple[list, ...]:
        """The six columns, in constructor order."""
        return (
            self.day,
            self.t_seconds,
            self.tgt_hi,
            self.tgt_lo,
            self.src_hi,
            self.src_lo,
        )

    # -- builders ----------------------------------------------------------

    @classmethod
    def from_observations(
        cls, observations: "Iterable[ProbeObservation]"
    ) -> "ColumnBatch":
        """Split a batch of observations into columns (one Python pass each)."""
        batch = (
            observations if isinstance(observations, list) else list(observations)
        )
        targets = [o.target for o in batch]
        sources = [o.source for o in batch]
        return cls(
            day=array(DAY_TYPECODE, [o.day for o in batch]),
            t_seconds=[o.t_seconds for o in batch],
            tgt_hi=array(U64_TYPECODE, [t >> 64 for t in targets]),
            tgt_lo=array(U64_TYPECODE, [t & MASK64 for t in targets]),
            src_hi=array(U64_TYPECODE, [s >> 64 for s in sources]),
            src_lo=array(U64_TYPECODE, [s & MASK64 for s in sources]),
        )

    @classmethod
    def from_responses(cls, responses, day: int | None = None) -> "ColumnBatch":
        """Columns for raw :class:`~repro.net.icmpv6.ProbeResponse` objects.

        *day* pins every row's day (a scan belongs to one campaign day);
        ``None`` derives it per response from the probe timestamp, the
        same rule as :meth:`ProbeObservation.from_response`.
        """
        out = cls()
        append = out.append
        for response in responses:
            append(
                day if day is not None else day_of(hours(response.time)),
                response.time,
                response.target,
                response.source,
            )
        return out

    @classmethod
    def from_rows(cls, rows: Iterable[list]) -> "ColumnBatch":
        """Columns from checkpoint rows ``[day, t_seconds, target, source]``."""
        out = cls()
        append = out.append
        for day, t, target, source in rows:
            append(day, t, target, source)
        return out

    def append(self, day: int, t_seconds: float, target: int, source: int) -> None:
        """Append one observation-as-scalars row."""
        self.day.append(day)
        self.t_seconds.append(t_seconds)
        self.tgt_hi.append(target >> 64)
        self.tgt_lo.append(target & MASK64)
        self.src_hi.append(source >> 64)
        self.src_lo.append(source & MASK64)

    def extend(self, other: "ColumnBatch") -> None:
        """Append every row of *other* (column-wise, no row objects)."""
        self.day.extend(other.day)
        self.t_seconds.extend(other.t_seconds)
        self.tgt_hi.extend(other.tgt_hi)
        self.tgt_lo.extend(other.tgt_lo)
        self.src_hi.extend(other.src_hi)
        self.src_lo.extend(other.src_lo)

    @classmethod
    def concat(cls, batches: Iterable["ColumnBatch"]) -> "ColumnBatch":
        out = cls()
        for batch in batches:
            out.extend(batch)
        return out

    def slice(self, start: int, stop: int | None = None) -> "ColumnBatch":
        """Rows ``[start:stop)`` as a new batch (list slices, no copies
        beyond the slice itself)."""
        return ColumnBatch(*(column[start:stop] for column in self.columns))

    # -- row views ---------------------------------------------------------

    def targets(self) -> list[int]:
        """Full 128-bit target addresses, one per row."""
        return [(hi << 64) | lo for hi, lo in zip(self.tgt_hi, self.tgt_lo)]

    def sources(self) -> list[int]:
        """Full 128-bit source addresses, one per row."""
        return [(hi << 64) | lo for hi, lo in zip(self.src_hi, self.src_lo)]

    def rows(self) -> list[list]:
        """Checkpoint rows ``[day, t_seconds, target, source]``, in order.

        The exact shape :func:`repro.stream.checkpoint._store_state` has
        always serialized -- backends produce these for snapshots, so
        checkpoint bytes stay identical whatever backend holds the rows.
        """
        return [
            [day, t, (thi << 64) | tlo, (shi << 64) | slo]
            for day, t, thi, tlo, shi, slo in zip(*self.columns)
        ]

    def observations(self) -> "list[ProbeObservation]":
        """Materialize :class:`ProbeObservation` objects, in row order."""
        from repro.core.records import ProbeObservation

        return [
            ProbeObservation(
                day=day, t_seconds=t, target=(thi << 64) | tlo, source=(shi << 64) | slo
            )
            for day, t, thi, tlo, shi, slo in zip(*self.columns)
        ]

    def __iter__(self) -> "Iterator[ProbeObservation]":
        from repro.core.records import ProbeObservation

        for day, t, thi, tlo, shi, slo in zip(*self.columns):
            yield ProbeObservation(
                day=day, t_seconds=t, target=(thi << 64) | tlo, source=(shi << 64) | slo
            )
