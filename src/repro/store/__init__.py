"""Pluggable columnar observation storage.

Every layer of the reproduction funnels observations through
:class:`~repro.core.records.ObservationStore`; this package is what
that store became -- a thin facade over a :class:`StoreBackend`, with
the corpus travelling as :class:`ColumnBatch` flat buffers instead of
per-row Python objects.

The pieces
----------

:class:`ColumnBatch`
    One batch of observations as six parallel columns (day, timestamp,
    and the target/source addresses split into uint64 hi/lo halves).
    The scanner emits it, every backend appends and scans it, the
    streaming engines ingest it without per-row conversion, and the
    multiprocess dispatcher ships it to workers as-is.

:class:`StoreBackend`
    The protocol a corpus holder implements: ``append_columns`` /
    ``append_observations`` (both currencies, one of them native),
    ``scan_columns`` / ``scan_observations`` (bounded chunks, insertion
    order), ``day_slice`` and ``iid_history`` (indexed slices),
    ``days`` / ``eui_iids`` / ``unique_sources`` /
    ``unique_eui64_sources`` / ``stats`` (incremental counters), and
    ``snapshot`` / ``restore`` (the canonical checkpoint rows
    ``[[day, t_seconds, target, source], ...]``).  Snapshot rows are
    the byte-identity contract: an engine checkpoint serializes the
    same JSON whichever backend holds the corpus.

Backends
--------

* :class:`ColumnarBackend` -- native column lists plus per-day/per-IID
  row indexes; the default whenever the numpy kernel is enabled (the
  ``[fast]`` install), because the engines then re-read the corpus with
  zero per-row Python work.
* :class:`ObjectBackend` -- the classic observation-object layout;
  stdlib-only default, byte-compatible with the pre-redesign store.
* :class:`SqliteBackend` -- append-only disk store for corpora larger
  than RAM, with incremental checkpoints (each commit writes only the
  rows appended since the last one) and incremental resume (restore
  appends only the rows the file doesn't already hold).

``REPRO_STORE_BACKEND`` (``object`` / ``columnar`` / ``sqlite``)
overrides the default for every store that doesn't pass an explicit
backend -- the hook the CI sqlite leg uses to run the whole tier-1
suite against the disk backend.

Adding a backend
----------------

Implement the :class:`StoreBackend` protocol (duck typing is enough;
the protocol is ``runtime_checkable`` for sanity asserts).  The
invariants the equivalence suite will hold you to:

1. insertion order is preserved everywhere -- scans, slices, snapshot;
2. ``snapshot()`` equals ``ColumnBatch.rows()`` of the concatenated
   ``scan_columns()`` output, value-exact (``0`` stays int, ``0.0``
   stays float);
3. ``restore(snapshot())`` onto a fresh backend reproduces the corpus;
4. counters (``rows``, ``stats``, ``eui_iids``) stay correct without
   re-walking the corpus.

Then pass an instance to ``ObservationStore(backend=...)`` -- nothing
else in the codebase needs to know it exists.  Register a name in
:func:`make_backend` only if the env-var override should reach it.
"""

from __future__ import annotations

from repro import config
from repro.store.backend import (
    SCAN_CHUNK_ROWS,
    ColumnarBackend,
    ObjectBackend,
    StoreBackend,
    StoreStats,
)
from repro.store.batch import ColumnBatch
from repro.store.sqlite import SqliteBackend

#: Environment override for the default backend of every
#: :class:`~repro.core.records.ObservationStore` constructed without an
#: explicit backend.  Unset: columnar when numpy is enabled, else object.
#: (Resolved through :func:`repro.config.current`.)
BACKEND_ENV = config.ENV_STORE_BACKEND

_BACKENDS = {
    "object": ObjectBackend,
    "columnar": ColumnarBackend,
    "sqlite": SqliteBackend,
}


def default_backend_name() -> str:
    """The backend every plain ``ObservationStore()`` gets.

    ``$REPRO_STORE_BACKEND`` wins; otherwise columnar exactly when the
    streaming kernel would also run columnar (one switch governs both),
    falling back to the object layout on stdlib-only installs.
    """
    override = config.current().store_backend
    if override:
        if override not in _BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV}={override!r}: unknown backend"
                f" (expected one of {sorted(_BACKENDS)})"
            )
        return override
    from repro.stream.columnar import numpy_enabled

    return "columnar" if numpy_enabled() else "object"


def make_backend(kind: str | None = None) -> StoreBackend:
    """Instantiate a backend by name (default: :func:`default_backend_name`)."""
    name = kind or default_backend_name()
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown store backend {name!r} (expected one of {sorted(_BACKENDS)})"
        ) from None
    return factory()


__all__ = [
    "BACKEND_ENV",
    "SCAN_CHUNK_ROWS",
    "ColumnBatch",
    "ColumnarBackend",
    "ObjectBackend",
    "SqliteBackend",
    "StoreBackend",
    "StoreStats",
    "default_backend_name",
    "make_backend",
]
