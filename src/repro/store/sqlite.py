"""Disk-backed observation storage with incremental checkpoints.

``SqliteBackend`` keeps the corpus in one append-only sqlite table, so
campaigns whose observation volume exceeds RAM stream their corpus from
disk: scans run through a bounded cursor, and the per-day / per-IID
slices are indexed SELECTs instead of resident Python lists.

Checkpointing is *incremental* at the storage layer: appended rows
accumulate in the connection's open transaction, and
:meth:`SqliteBackend.checkpoint` commits exactly the delta since the
last checkpoint -- the disk write is O(rows appended), never O(corpus),
unlike the in-memory backends whose only persistence is the engine
checkpoint re-serializing every row.  Resume is incremental too:
:meth:`restore` compares the checkpoint rows against what the database
file already holds and appends only the missing tail, so reattaching a
store file after a crash replays nothing.

Round-trip exactness rules (the cross-backend byte-identity contract):

* the uint64 address halves are stored shifted by ``-2**63`` to fit
  sqlite's signed 64-bit INTEGER, and shifted back on read;
* the timestamp column is declared without a type, giving it BLOB
  affinity -- sqlite then preserves the bound Python value exactly
  (an int stays an int, a float stays a float), so snapshot JSON never
  differs from the in-memory backends on values like ``0`` vs ``0.0``.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.net.eui64 import is_eui64_iid
from repro.store.backend import SCAN_CHUNK_ROWS, StoreStats, _verify_prefix
from repro.store.batch import ColumnBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.records import ProbeObservation

_SHIFT = 1 << 63  # uint64 <-> sqlite signed INTEGER

_SCHEMA = """
CREATE TABLE IF NOT EXISTS observations (
    seq INTEGER PRIMARY KEY,
    day INTEGER NOT NULL,
    t,
    tgt_hi INTEGER NOT NULL,
    tgt_lo INTEGER NOT NULL,
    src_hi INTEGER NOT NULL,
    src_lo INTEGER NOT NULL,
    eui INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_observations_day ON observations(day);
CREATE INDEX IF NOT EXISTS idx_observations_iid ON observations(src_lo);
CREATE TABLE IF NOT EXISTS store_meta (
    key TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

_SELECT_COLS = "day, t, tgt_hi, tgt_lo, src_hi, src_lo"


def _decode_batch(rows: list[tuple]) -> ColumnBatch:
    batch = ColumnBatch()
    for day, t, tgt_hi, tgt_lo, src_hi, src_lo in rows:
        batch.day.append(day)
        batch.t_seconds.append(t)
        batch.tgt_hi.append(tgt_hi + _SHIFT)
        batch.tgt_lo.append(tgt_lo + _SHIFT)
        batch.src_hi.append(src_hi + _SHIFT)
        batch.src_lo.append(src_lo + _SHIFT)
    return batch


class SqliteBackend:
    """Append-only sqlite corpus with delta-only checkpoint commits.

    *path* names the database file; reopening an existing file resumes
    with every row it holds.  ``path=None`` creates a throwaway file in
    the system temp directory, deleted on :meth:`close` -- the shape
    the ``REPRO_STORE_BACKEND=sqlite`` test leg runs every store on.
    One backend instance owns its file; concurrent writers are out of
    scope (the store has a single choke point for inserts by design).
    """

    name = "sqlite"
    #: Producers that can emit either currency should emit columns.
    prefers_columns = True

    def __init__(self, path: str | Path | None = None) -> None:
        if path is None:
            fd, tmp_path = tempfile.mkstemp(prefix="repro-store-", suffix=".sqlite")
            os.close(fd)
            self.path = Path(tmp_path)
            self._owns_file = True
        else:
            self.path = Path(path)
            self._owns_file = False
        self._con = sqlite3.connect(self.path)
        self._con.executescript(_SCHEMA)
        self._con.commit()
        self._load_counters()
        self._appended_since_checkpoint = 0

    def _load_counters(self) -> None:
        """(Re)build the incremental counters from the table."""
        cur = self._con.execute(
            "SELECT COUNT(*), COALESCE(SUM(eui), 0) FROM observations"
        )
        self._rows, self._eui_rows = cur.fetchone()
        self._eui_iids: set[int] = {
            lo + _SHIFT
            for (lo,) in self._con.execute(
                "SELECT DISTINCT src_lo FROM observations WHERE eui = 1"
            )
        }
        self._day_counts: dict[int, int] = dict(
            self._con.execute("SELECT day, COUNT(*) FROM observations GROUP BY day")
        )

    # -- appends -----------------------------------------------------------

    @property
    def rows(self) -> int:
        return self._rows

    def append_columns(self, batch: ColumnBatch) -> int:
        n = len(batch)
        if not n:
            return 0
        eui_iids = self._eui_iids
        day_counts = self._day_counts
        encoded = []
        for day, t, thi, tlo, shi, slo in zip(*batch.columns):
            if slo in eui_iids:
                eui = 1
            elif is_eui64_iid(slo):
                eui_iids.add(slo)
                eui = 1
            else:
                eui = 0
            self._eui_rows += eui
            day_counts[day] = day_counts.get(day, 0) + 1
            encoded.append(
                (day, t, thi - _SHIFT, tlo - _SHIFT, shi - _SHIFT, slo - _SHIFT, eui)
            )
        self._con.executemany(
            "INSERT INTO observations"
            " (day, t, tgt_hi, tgt_lo, src_hi, src_lo, eui)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            encoded,
        )
        self._rows += n
        self._appended_since_checkpoint += n
        return n

    def append_observations(self, observations: "list[ProbeObservation]") -> int:
        return self.append_columns(ColumnBatch.from_observations(observations))

    # -- incremental checkpoints -------------------------------------------

    @property
    def appended_since_checkpoint(self) -> int:
        """Rows sitting in the open transaction, not yet on disk."""
        return self._appended_since_checkpoint

    def checkpoint(self) -> int:
        """Commit the delta since the last checkpoint; returns its size.

        O(delta) disk writes: rows already committed are untouched.  The
        durable row count lands in ``store_meta`` so a reattached file
        reports where its last checkpoint stood.
        """
        delta = self._appended_since_checkpoint
        self._con.execute(
            "INSERT INTO store_meta (key, value) VALUES ('checkpoint_rows', ?)"
            " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (self._rows,),
        )
        self._con.commit()
        self._appended_since_checkpoint = 0
        return delta

    def checkpointed_rows(self) -> int:
        """Rows the last :meth:`checkpoint` made durable (0 if never)."""
        cur = self._con.execute(
            "SELECT value FROM store_meta WHERE key = 'checkpoint_rows'"
        )
        row = cur.fetchone()
        return row[0] if row else 0

    # -- scans and slices ---------------------------------------------------

    def scan_columns(self, chunk_rows: int = SCAN_CHUNK_ROWS) -> Iterator[ColumnBatch]:
        cur = self._con.execute(
            f"SELECT {_SELECT_COLS} FROM observations ORDER BY seq"
        )
        while True:
            rows = cur.fetchmany(chunk_rows)
            if not rows:
                return
            yield _decode_batch(rows)

    def scan_observations(
        self, chunk_rows: int = SCAN_CHUNK_ROWS
    ) -> "Iterator[list[ProbeObservation]]":
        for batch in self.scan_columns(chunk_rows):
            yield batch.observations()

    def day_slice(self, day: int) -> ColumnBatch:
        cur = self._con.execute(
            f"SELECT {_SELECT_COLS} FROM observations WHERE day = ? ORDER BY seq",
            (day,),
        )
        return _decode_batch(cur.fetchall())

    def iid_history(self, iid: int) -> ColumnBatch:
        cur = self._con.execute(
            f"SELECT {_SELECT_COLS} FROM observations WHERE src_lo = ? ORDER BY seq",
            (iid - _SHIFT,),
        )
        return _decode_batch(cur.fetchall())

    def days(self) -> list[int]:
        return sorted(self._day_counts)

    def eui_iids(self) -> set[int]:
        return set(self._eui_iids)

    def unique_sources(self) -> set[int]:
        return {
            ((hi + _SHIFT) << 64) | (lo + _SHIFT)
            for hi, lo in self._con.execute(
                "SELECT DISTINCT src_hi, src_lo FROM observations"
            )
        }

    def unique_eui64_sources(self) -> set[int]:
        return {
            ((hi + _SHIFT) << 64) | (lo + _SHIFT)
            for hi, lo in self._con.execute(
                "SELECT DISTINCT src_hi, src_lo FROM observations WHERE eui = 1"
            )
        }

    def stats(self) -> StoreStats:
        return StoreStats(
            backend=self.name,
            rows=self._rows,
            eui_rows=self._eui_rows,
            days=len(self._day_counts),
        )

    # -- snapshot / restore -------------------------------------------------

    def snapshot(self) -> list[list]:
        """Full checkpoint rows; commits the pending delta first.

        The returned rows are byte-identical to the in-memory backends';
        the side-effect commit means every engine checkpoint also makes
        the sqlite file durable at O(delta) cost.
        """
        self.checkpoint()
        rows: list[list] = []
        for batch in self.scan_columns():
            rows.extend(batch.rows())
        return rows

    def snapshot_columns(self, start_row: int = 0) -> ColumnBatch:
        """Checkpoint columns from *start_row* on; commits the delta first.

        The commit side effect is part of the snapshot contract (see
        :meth:`snapshot`): every engine checkpoint -- binary included --
        also makes the sqlite file durable at O(delta) cost.
        """
        self.checkpoint()
        cur = self._con.execute(
            f"SELECT {_SELECT_COLS} FROM observations"
            " ORDER BY seq LIMIT -1 OFFSET ?",
            (start_row,),
        )
        return _decode_batch(cur.fetchall())

    def restore(self, rows: list[list]) -> int:
        """Converge the file on the checkpoint rows; appends only the tail.

        A freshly created file loads everything.  A reattached file
        (the incremental-resume path) verifies every row it shares
        with the checkpoint -- a chunked read, O(held), still no
        re-inserts -- and appends only ``rows[held:]``.  A file holding
        rows *beyond* the checkpoint -- a run that kept ingesting after
        its last checkpoint and then exited, committing on close -- has
        its uncheckpointed suffix discarded after verification: the
        resumed stream replays exactly those post-checkpoint responses,
        so keeping them would double the corpus.  A file that disagrees
        with the checkpoint anywhere in the shared prefix is a
        different corpus and raises.
        """
        held = self._rows
        keep = min(held, len(rows))
        _verify_prefix(self, rows, keep)
        if held > len(rows):
            if keep:
                cur = self._con.execute(
                    "SELECT seq FROM observations ORDER BY seq LIMIT 1 OFFSET ?",
                    (keep - 1,),
                )
                (seq,) = cur.fetchone()
            else:
                seq = -1
            self._con.execute("DELETE FROM observations WHERE seq > ?", (seq,))
            self._con.commit()
            self._load_counters()
            self._appended_since_checkpoint = 0
        return self.append_columns(ColumnBatch.from_rows(rows[held:]))

    def close(self) -> None:
        """Commit and close; unlink the file if this backend created it."""
        if self._con is not None:
            try:
                self._con.commit()
                self._con.close()
            except sqlite3.Error:  # pragma: no cover - teardown best effort
                pass
            self._con = None
        if self._owns_file:
            try:
                self.path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - teardown best effort
                pass
            self._owns_file = False

    def __del__(self) -> None:  # pragma: no cover - gc-timing dependent
        try:
            self.close()
        except Exception:
            pass
