"""zmap6-style high-speed scanner over a simulated network.

Reproduces the probing behaviours the paper's methodology depends on:

* stateless ICMPv6 Echo Request probing of explicit target lists,
* pseudorandom probe order derived from a seed, with the *same seed
  replaying the same order* -- the paper probes identical targets in
  identical order every 24 hours (Section 5),
* a constant send rate (the paper uses 10k packets/second), which maps
  each probe to a deterministic simulated send time, and
* optional network loss applied independently per probe.

The scanner is generic over the "network": any object with
``probe(target: int, t_seconds: float) -> ProbeResponse | None``.  In this
library that is :class:`repro.simnet.internet.SimInternet`, the simulated
Internet seen from the attacker's vantage point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, Sequence

from repro.net.icmpv6 import ProbeResponse
from repro.scan.permutation import MultiplicativeCycle
from repro.simnet.clock import day_of, hours

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.batch import ColumnBatch


class ProbeNetwork(Protocol):
    """The minimal network interface the scanner probes against."""

    def probe(self, target: int, t_seconds: float) -> ProbeResponse | None:
        """Send one Echo Request at *t_seconds*; maybe get a response."""


@dataclass(frozen=True, slots=True)
class ScanConfig:
    """Scanner parameters.

    ``rate_pps`` is the paper's 10k packets/second by default.  ``seed``
    fixes the probe order; ``loss_rate`` models end-to-end packet loss
    applied independently per probe (response or request side).
    """

    rate_pps: float = 10_000.0
    seed: int = 0
    loss_rate: float = 0.0
    randomize_order: bool = True

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {self.rate_pps}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")


@dataclass
class ScanResult:
    """Outcome of one scan: responses plus accounting.

    ``responses`` preserves probe order.  ``duration_seconds`` is the
    simulated time the scan occupied at the configured rate -- the
    quantity behind the paper's "13 seconds at 10kpps" style arithmetic.
    """

    probes_sent: int = 0
    responses: list[ProbeResponse] = field(default_factory=list)
    started_at: float = 0.0

    @property
    def response_rate(self) -> float:
        return len(self.responses) / self.probes_sent if self.probes_sent else 0.0

    @property
    def duration_seconds(self) -> float:
        return self._duration

    _duration: float = 0.0

    def responders(self) -> set[int]:
        """Distinct source addresses that answered."""
        return {r.source for r in self.responses}

    def pairs(self) -> set[tuple[int, int]]:
        """Distinct <target, response source> pairs (Section 4.3's unit)."""
        return {(r.target, r.source) for r in self.responses}


class ScanStream:
    """One scan as a lazy response iterator with live accounting.

    Yields :class:`ProbeResponse` objects in probe order as they arrive;
    ``probes_sent`` counts every probe processed so far (lost and
    unanswered included), so a consumer that stops early still knows the
    probe cost up to and including the last yielded response.  Probing
    happens lazily: nothing is sent until the stream is iterated.
    """

    def __init__(
        self,
        network: ProbeNetwork,
        config: ScanConfig,
        ordered: Iterable[int],
        start_seconds: float,
    ) -> None:
        self.started_at = start_seconds
        self.probes_sent = 0
        self._interval = 1.0 / config.rate_pps
        self._iterator = self._probe_loop(network, config, ordered, start_seconds)

    def _probe_loop(
        self,
        network: ProbeNetwork,
        config: ScanConfig,
        ordered: Iterable[int],
        start_seconds: float,
    ) -> Iterator[ProbeResponse]:
        loss = config.loss_rate
        loss_rng = random.Random(config.seed ^ 0x10552) if loss else None
        interval = self._interval
        now = start_seconds
        for target in ordered:
            self.probes_sent += 1
            if loss_rng is not None and loss_rng.random() < loss:
                now += interval
                continue
            response = network.probe(target, now)
            now += interval
            if response is not None:
                yield response

    def __iter__(self) -> Iterator[ProbeResponse]:
        return self._iterator

    @property
    def duration_seconds(self) -> float:
        """Simulated time occupied by the probes processed so far."""
        return self.probes_sent * self._interval

    def column_batches(
        self, day: int | None = None, batch_rows: int = 4096
    ) -> "Iterator[ColumnBatch]":
        """Drain the scan as :class:`~repro.store.batch.ColumnBatch` chunks.

        The scanner's native columnar emission: responses land directly
        in flat day/hi/lo buffers (no per-response observation objects),
        sized for the streaming engines' ``ingest_columns`` and the
        stores' ``extend_columns``.  *day* pins the campaign day (one
        scan belongs to one day); ``None`` derives it per response from
        the probe timestamp.  Probe order, loss decisions, and
        accounting are exactly those of plain iteration -- this is the
        same underlying probe loop, chunked.
        """
        from repro.store.batch import ColumnBatch

        batch = ColumnBatch()
        append = batch.append
        for response in self._iterator:
            append(
                day if day is not None else day_of(hours(response.time)),
                response.time,
                response.target,
                response.source,
            )
            if len(batch) >= batch_rows:
                yield batch
                batch = ColumnBatch()
                append = batch.append
        if len(batch):
            yield batch

    def result(self) -> ScanResult:
        """Drain the remaining probes and package a :class:`ScanResult`."""
        result = ScanResult(started_at=self.started_at)
        result.responses.extend(self._iterator)
        result.probes_sent = self.probes_sent
        result._duration = self.duration_seconds
        return result


class Zmap6:
    """The attacker's scanner.

    One instance may run many scans; each ``scan`` call is standalone and
    deterministic given (targets, config, start time).  ``stream`` is the
    single probe loop underneath both ``scan`` and ``scan_until``: batch
    and streaming consumers therefore see byte-identical probe orders,
    loss decisions, and timings.
    """

    def __init__(self, network: ProbeNetwork, config: ScanConfig | None = None) -> None:
        self.network = network
        self.config = config or ScanConfig()

    def _ordered(self, targets: Sequence[int]) -> Iterable[int]:
        if not self.config.randomize_order or len(targets) <= 1:
            return targets
        cycle = MultiplicativeCycle(len(targets), seed=self.config.seed)
        return (targets[i] for i in cycle)

    def stream(self, targets: Sequence[int], start_seconds: float = 0.0) -> ScanStream:
        """Probe every target once, yielding responses as they arrive.

        Targets are probed in the seed-determined order at the configured
        rate; each probe ``i`` is sent at ``start + i / rate``.
        """
        return ScanStream(
            self.network, self.config, self._ordered(targets), start_seconds
        )

    def scan(self, targets: Sequence[int], start_seconds: float = 0.0) -> ScanResult:
        """Probe every target once, starting at *start_seconds*.

        Batch form of :meth:`stream`: drains the whole scan into a
        :class:`ScanResult`.
        """
        return self.stream(targets, start_seconds).result()

    def scan_until(
        self,
        targets: Sequence[int],
        want_source_iid: int,
        start_seconds: float = 0.0,
    ) -> tuple[ProbeResponse | None, int]:
        """Probe in scan order until a response's source IID matches.

        This is the tracking primitive of Section 6: stop as soon as the
        hunted EUI-64 IID shows up, and report how many probes it took.
        Returns ``(matching response | None, probes_sent)``.
        """
        iid_mask = (1 << 64) - 1
        stream = self.stream(targets, start_seconds)
        for response in stream:
            if (response.source & iid_mask) == want_source_iid:
                return response, stream.probes_sent
        return None, stream.probes_sent
