"""zmap6-style high-speed scanner over a simulated network.

Reproduces the probing behaviours the paper's methodology depends on:

* stateless ICMPv6 Echo Request probing of explicit target lists,
* pseudorandom probe order derived from a seed, with the *same seed
  replaying the same order* -- the paper probes identical targets in
  identical order every 24 hours (Section 5),
* a constant send rate (the paper uses 10k packets/second), which maps
  each probe to a deterministic simulated send time, and
* optional network loss applied independently per probe.

The scanner is generic over the "network": any object with
``probe(target: int, t_seconds: float) -> ProbeResponse | None``.  In this
library that is :class:`repro.simnet.internet.SimInternet`, the simulated
Internet seen from the attacker's vantage point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

from repro.net.icmpv6 import ProbeResponse
from repro.scan.permutation import MultiplicativeCycle


class ProbeNetwork(Protocol):
    """The minimal network interface the scanner probes against."""

    def probe(self, target: int, t_seconds: float) -> ProbeResponse | None:
        """Send one Echo Request at *t_seconds*; maybe get a response."""


@dataclass(frozen=True, slots=True)
class ScanConfig:
    """Scanner parameters.

    ``rate_pps`` is the paper's 10k packets/second by default.  ``seed``
    fixes the probe order; ``loss_rate`` models end-to-end packet loss
    applied independently per probe (response or request side).
    """

    rate_pps: float = 10_000.0
    seed: int = 0
    loss_rate: float = 0.0
    randomize_order: bool = True

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {self.rate_pps}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")


@dataclass
class ScanResult:
    """Outcome of one scan: responses plus accounting.

    ``responses`` preserves probe order.  ``duration_seconds`` is the
    simulated time the scan occupied at the configured rate -- the
    quantity behind the paper's "13 seconds at 10kpps" style arithmetic.
    """

    probes_sent: int = 0
    responses: list[ProbeResponse] = field(default_factory=list)
    started_at: float = 0.0

    @property
    def response_rate(self) -> float:
        return len(self.responses) / self.probes_sent if self.probes_sent else 0.0

    @property
    def duration_seconds(self) -> float:
        return self._duration

    _duration: float = 0.0

    def responders(self) -> set[int]:
        """Distinct source addresses that answered."""
        return {r.source for r in self.responses}

    def pairs(self) -> set[tuple[int, int]]:
        """Distinct <target, response source> pairs (Section 4.3's unit)."""
        return {(r.target, r.source) for r in self.responses}


class Zmap6:
    """The attacker's scanner.

    One instance may run many scans; each ``scan`` call is standalone and
    deterministic given (targets, config, start time).
    """

    def __init__(self, network: ProbeNetwork, config: ScanConfig | None = None) -> None:
        self.network = network
        self.config = config or ScanConfig()

    def _ordered(self, targets: Sequence[int]) -> Iterable[int]:
        if not self.config.randomize_order or len(targets) <= 1:
            return targets
        cycle = MultiplicativeCycle(len(targets), seed=self.config.seed)
        return (targets[i] for i in cycle)

    def scan(self, targets: Sequence[int], start_seconds: float = 0.0) -> ScanResult:
        """Probe every target once, starting at *start_seconds*.

        Targets are probed in the seed-determined order at the configured
        rate; each probe ``i`` is sent at ``start + i / rate``.
        """
        config = self.config
        result = ScanResult(started_at=start_seconds)
        loss = config.loss_rate
        loss_rng = random.Random(config.seed ^ 0x10552) if loss else None
        interval = 1.0 / config.rate_pps

        now = start_seconds
        count = 0
        for target in self._ordered(targets):
            count += 1
            if loss_rng is not None and loss_rng.random() < loss:
                now += interval
                continue
            response = self.network.probe(target, now)
            if response is not None:
                result.responses.append(response)
            now += interval

        result.probes_sent = count
        result._duration = count * interval
        return result

    def scan_until(
        self,
        targets: Sequence[int],
        want_source_iid: int,
        start_seconds: float = 0.0,
    ) -> tuple[ProbeResponse | None, int]:
        """Probe in scan order until a response's source IID matches.

        This is the tracking primitive of Section 6: stop as soon as the
        hunted EUI-64 IID shows up, and report how many probes it took.
        Returns ``(matching response | None, probes_sent)``.
        """
        config = self.config
        loss = config.loss_rate
        loss_rng = random.Random(config.seed ^ 0x10552) if loss else None
        interval = 1.0 / config.rate_pps
        iid_mask = (1 << 64) - 1

        now = start_seconds
        sent = 0
        for target in self._ordered(targets):
            sent += 1
            if loss_rng is not None and loss_rng.random() < loss:
                now += interval
                continue
            response = self.network.probe(target, now)
            now += interval
            if response is not None and (response.source & iid_mask) == want_source_iid:
                return response, sent
        return None, sent
