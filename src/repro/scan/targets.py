"""Target-address generation for the paper's probing strategies.

Three generators cover every probing pattern used in Sections 3-6:

* one random-IID target inside **each /64** of a prefix (allocation-size
  grids, Figure 3; rotation detection, Section 4.3),
* one random-IID target inside **each length-N subnet** of a prefix
  (density inference probes one per /56, Section 4.2; trackers probe one
  per inferred allocation unit, Section 6), and
* one target per allocation unit across a whole **rotation pool**
  (the Figure 2 reduced search space).

Random IIDs make the probed host almost surely nonexistent, which is what
forces the CPE to answer with an ICMPv6 error exposing its WAN address.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.net.addr import IID_BITS, Prefix


def random_iid_targets(prefix: Prefix, count: int, rng: random.Random) -> list[int]:
    """*count* uniformly random addresses inside *prefix*.

    Used for seed expansion (one random /64 + random IID per /48,
    Section 4.1).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [prefix.random_addr(rng) for _ in range(count)]


def one_target_per_subnet(
    prefix: Prefix, subnet_plen: int, rng: random.Random
) -> list[int]:
    """One random-IID target in each length-*subnet_plen* subnet of *prefix*.

    For ``subnet_plen=64`` this is the Figure 3 grid workload (one probe
    per /64 of a /48); for ``subnet_plen=56`` it is the Section 4.2
    density workload.  The IID (and any /64 selection below the subnet
    level) is random per target.
    """
    if subnet_plen < prefix.plen:
        raise ValueError(
            f"subnet /{subnet_plen} larger than prefix /{prefix.plen}"
        )
    if subnet_plen > IID_BITS:
        raise ValueError(f"subnet_plen must be <= 64, got {subnet_plen}")
    return [subnet.random_addr(rng) for subnet in prefix.subnets(subnet_plen)]


def targets_for_pool(
    pool_prefix: Prefix, allocation_plen: int, rng: random.Random
) -> list[int]:
    """One target per allocation-sized block across a rotation pool.

    This is the Section 6 tracking workload: knowing the provider
    allocates (say) /56s and rotates within (say) a /46, the attacker
    sends one probe per /56 of the /46 -- 1/256th the probes of a naive
    per-/64 sweep.
    """
    return one_target_per_subnet(pool_prefix, allocation_plen, rng)


def iter_subnet_targets(
    prefix: Prefix, subnet_plen: int, rng: random.Random
) -> Iterator[int]:
    """Lazy variant of :func:`one_target_per_subnet` for very large sweeps."""
    if subnet_plen < prefix.plen:
        raise ValueError(
            f"subnet /{subnet_plen} larger than prefix /{prefix.plen}"
        )
    if subnet_plen > IID_BITS:
        raise ValueError(f"subnet_plen must be <= 64, got {subnet_plen}")
    for subnet in prefix.subnets(subnet_plen):
        yield subnet.random_addr(rng)
