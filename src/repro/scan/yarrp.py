"""yarrp-style randomized traceroute for seed-data generation.

The paper bootstraps from the CAIDA IPv6 Routed /48 dataset: yarrp
traceroutes to one target per routed /48, whose *last responsive hop*
often carries an EUI-64 address when the CPE is the final routed device
(Section 4, citing Rye & Beverly's periphery discovery).

The simulated network exposes ``trace(target, t_seconds) -> list[hop
addresses]``; yarrp's contribution here is randomized (target, TTL)
probing order, per-hop Time Exceeded harvesting, and last-responsive-hop
extraction.  We model hops that do not answer as ``None`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.net.eui64 import addr_is_eui64
from repro.scan.permutation import MultiplicativeCycle


class TraceNetwork(Protocol):
    """Minimal network interface for traceroute."""

    def trace(self, target: int, t_seconds: float) -> list[int | None]:
        """Forwarding path toward *target*: one entry per hop, None if silent."""


@dataclass(frozen=True, slots=True)
class TracerouteRecord:
    """Result of one traceroute: target, per-TTL hops, derived last hop."""

    target: int
    hops: tuple[int | None, ...]

    @property
    def last_responsive_hop(self) -> int | None:
        for hop in reversed(self.hops):
            if hop is not None:
                return hop
        return None

    @property
    def last_hop_is_eui64(self) -> bool:
        last = self.last_responsive_hop
        return last is not None and addr_is_eui64(last)


class Yarrp:
    """Randomized high-speed traceroute over a simulated topology."""

    def __init__(self, network: TraceNetwork, rate_pps: float = 10_000.0, seed: int = 0) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        self.network = network
        self.rate_pps = rate_pps
        self.seed = seed

    def trace_all(
        self, targets: Sequence[int], start_seconds: float = 0.0
    ) -> list[TracerouteRecord]:
        """Traceroute every target, in seed-randomized order.

        Real yarrp randomizes over the (target, TTL) product space; the
        observable consequence -- which is what matters here -- is that
        per-target probe *times* are spread across the whole run rather
        than clustered back-to-back.  We charge each target its full hop
        count of probes and randomize target order.
        """
        records = []
        if not targets:
            return records
        order = MultiplicativeCycle(len(targets), seed=self.seed)
        interval = 1.0 / self.rate_pps
        now = start_seconds
        for index in order:
            target = targets[index]
            hops = self.network.trace(target, now)
            now += interval * max(1, len(hops))
            records.append(TracerouteRecord(target=target, hops=tuple(hops)))
        return records

    def eui64_last_hops(
        self, targets: Sequence[int], start_seconds: float = 0.0
    ) -> list[TracerouteRecord]:
        """Traceroutes whose last responsive hop carries an EUI-64 IID."""
        return [
            record
            for record in self.trace_all(targets, start_seconds)
            if record.last_hop_is_eui64
        ]
