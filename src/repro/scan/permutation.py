"""Seeded bijections over ``[0, n)`` for probe ordering and rotation.

Two constructions:

* :class:`MultiplicativeCycle` -- how real zmap randomizes target order:
  iterate the multiplicative group of integers modulo a prime ``p > n``
  using a primitive root, skipping values outside the domain.  Stateless
  per element, fully determined by (n, seed), so re-running a scan with
  the same seed replays the identical order -- the property the paper's
  daily campaign relies on ("same zmap random seed", Section 5).

* :class:`FeistelPermutation` -- a small keyed Feistel network with
  cycle-walking, giving O(1) forward *and inverse* evaluation.  The
  simulator's shuffle-rotation policy uses the inverse to resolve
  "which customer occupies slot s in epoch e" without materializing
  per-epoch tables.
"""

from __future__ import annotations

import random
from typing import Iterator


def _miller_rabin(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24 (fixed witness set)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than *n*."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not _miller_rabin(candidate):
        candidate += 2
    return candidate


def _prime_factors(n: int) -> list[int]:
    """Distinct prime factors of *n* by trial division (n fits our domains)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def _find_primitive_root(p: int, rng: random.Random) -> int:
    """A random primitive root modulo prime *p*."""
    if p == 2:
        return 1
    order_factors = _prime_factors(p - 1)
    while True:
        g = rng.randrange(2, p)
        if all(pow(g, (p - 1) // q, p) != 1 for q in order_factors):
            return g


class MultiplicativeCycle:
    """zmap-style random-order iteration of ``[0, n)``.

    Walks the cycle ``x -> x * g mod p`` where ``p`` is the smallest prime
    greater than ``n`` and ``g`` a seed-chosen primitive root.  Group
    elements are ``1..p-1``; we map element ``x`` to value ``x - 1`` and
    skip anything >= n.  Every value in ``[0, n)`` appears exactly once
    per cycle.
    """

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise ValueError(f"domain must be positive, got {n}")
        self.n = n
        self.seed = seed
        rng = random.Random(seed)
        self._p = next_prime(n)
        self._g = _find_primitive_root(self._p, rng)
        self._start = rng.randrange(1, self._p)

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        x = self._start
        for _ in range(self._p - 1):
            value = x - 1
            if value < self.n:
                yield value
            x = x * self._g % self._p

    def first(self, k: int) -> list[int]:
        """The first *k* values of the cycle (for tests and sampling)."""
        out = []
        for value in self:
            out.append(value)
            if len(out) == k:
                break
        return out


def _mix(value: int, key: int, rnd: int) -> int:
    """Cheap integer hash for Feistel round functions (splitmix64 core)."""
    x = (value ^ (key + 0x9E3779B97F4A7C15 * (rnd + 1))) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class FeistelPermutation:
    """Keyed bijection over ``[0, n)`` with O(1) forward and inverse.

    A balanced Feistel network over the smallest even bit-width covering
    ``n``, with cycle-walking to stay inside the domain.  Walking
    terminates because the network is a bijection on the covering power
    of two: repeatedly applying it from a point inside ``[0, n)`` must
    re-enter ``[0, n)`` within (cover - n) steps.
    """

    ROUNDS = 4

    def __init__(self, n: int, key: int) -> None:
        if n <= 0:
            raise ValueError(f"domain must be positive, got {n}")
        self.n = n
        self.key = key
        bits = max(2, (n - 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._cover = 1 << bits

    def _round(self, half: int, rnd: int) -> int:
        return _mix(half, self.key, rnd) & self._half_mask

    def _encrypt_once(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for rnd in range(self.ROUNDS):
            left, right = right, left ^ self._round(right, rnd)
        return (left << self._half_bits) | right

    def _decrypt_once(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for rnd in reversed(range(self.ROUNDS)):
            left, right = right ^ self._round(left, rnd), left
        return (left << self._half_bits) | right

    def forward(self, value: int) -> int:
        """Image of *value* under the permutation."""
        if not 0 <= value < self.n:
            raise ValueError(f"value {value} outside [0, {self.n})")
        x = self._encrypt_once(value)
        while x >= self.n:
            x = self._encrypt_once(x)
        return x

    def inverse(self, value: int) -> int:
        """Preimage of *value* under the permutation."""
        if not 0 <= value < self.n:
            raise ValueError(f"value {value} outside [0, {self.n})")
        x = self._decrypt_once(value)
        while x >= self.n:
            x = self._decrypt_once(x)
        return x

    def __iter__(self) -> Iterator[int]:
        for i in range(self.n):
            yield self.forward(i)
