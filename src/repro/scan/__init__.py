"""Scanning substrate: zmap6- and yarrp-style probing over the simulator.

The paper's measurements rest on two probing tools: zmap with the tumi8
IPv6 extensions for high-speed stateless scanning (Sections 3-6), and
yarrp for the randomized traceroutes behind the CAIDA seed data
(Section 4).  This subpackage reimplements the behaviours the methodology
depends on: random-permutation probe ordering that is reproducible from a
seed, a simulated-time rate model, loss, and last-hop extraction.
"""

from repro.scan.permutation import FeistelPermutation, MultiplicativeCycle
from repro.scan.rate import IcmpRateLimiter, TokenBucket
from repro.scan.targets import (
    one_target_per_subnet,
    random_iid_targets,
    targets_for_pool,
)
from repro.scan.yarrp import TracerouteRecord, Yarrp
from repro.scan.zmap import ScanConfig, ScanResult, Zmap6

__all__ = [
    "FeistelPermutation",
    "IcmpRateLimiter",
    "MultiplicativeCycle",
    "ScanConfig",
    "ScanResult",
    "TokenBucket",
    "TracerouteRecord",
    "Yarrp",
    "Zmap6",
    "one_target_per_subnet",
    "random_iid_targets",
    "targets_for_pool",
]
