"""Rate control: the scanner's send rate and per-device ICMPv6 limiting.

Two sides of the same mechanism appear in the paper:

* the attacker probes at a deliberate 10k packets per second so as not to
  trip rate limiters (Sections 3.1, 7), and
* RFC 4443 *mandates* that routers rate-limit the ICMPv6 errors our whole
  methodology harvests, so the simulated CPE enforce a token bucket on
  their replies.

Time here is simulation time in **seconds** (the clock layer converts to
hours); buckets are purely arithmetic, no wall-clock involvement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TokenBucket:
    """A standard token bucket: *rate* tokens/second, capacity *burst*.

    ``try_consume(now)`` returns whether one token was available at time
    *now* (seconds), refilling lazily.  Slightly out-of-order
    observations (overlapping scans replaying the same window) are
    clamped to the latest seen time -- no refill, conservative.  A
    backward jump larger than the bucket's full-refill time means the
    caller rewound simulation time to run a logically separate
    measurement; the bucket resets to full, since in that branch of
    simulated history it had been idle.
    """

    rate: float
    burst: float
    _tokens: float = 0.0
    _last: float = float("-inf")

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._tokens = self.burst

    def _refill(self, now: float) -> None:
        if self._last == float("-inf"):
            self._last = now
            return
        if now < self._last:
            if self._last - now > self.burst / self.rate:
                # Time rewound past a full refill: a separate run.
                self._tokens = self.burst
                self._last = now
            return  # small overlap: no refill, no rewind
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_consume(self, now: float, tokens: float = 1.0) -> bool:
        """Consume *tokens* at time *now* if available."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens available at time *now* without consuming."""
        self._refill(now)
        return self._tokens


class IcmpRateLimiter:
    """Per-source ICMPv6 error rate limiting (RFC 4443 section 2.4(f)).

    Each responding device owns one limiter; when the bucket is empty the
    error message is simply not generated, which the attacker observes as
    packet loss.  Defaults approximate common router implementations
    (100 errors/second with a small burst).
    """

    DEFAULT_RATE = 100.0
    DEFAULT_BURST = 10.0

    def __init__(self, rate: float = DEFAULT_RATE, burst: float = DEFAULT_BURST) -> None:
        self._bucket = TokenBucket(rate=rate, burst=burst)
        self.suppressed = 0
        self.emitted = 0

    def allow(self, now: float) -> bool:
        """True if an error may be emitted at time *now* (seconds)."""
        if self._bucket.try_consume(now):
            self.emitted += 1
            return True
        self.suppressed += 1
        return False
