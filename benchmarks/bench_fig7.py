"""Figure 7: rotation pool sizes vs BGP prefix sizes."""

from repro.experiments import fig7


def test_fig7(benchmark, context):
    result = benchmark(fig7.run, context)
    assert 12 <= result.median_gap_bits() <= 26
    print("\n" + result.render())
