"""Table 2: the week-long tracking case study over the rotating cohort."""

from repro.experiments import tracking


def test_table2(benchmark, context):
    result = benchmark.pedantic(
        tracking.run_table2, args=(context,), rounds=1, iterations=1
    )
    assert result.n_tracked >= 8
    print("\n" + result.render_table2())
