"""Shared benchmark fixtures.

All benchmarks run against one memoized small-scale experiment context:
the first benchmark in a session pays for the simulated Internet, the
discovery pipeline, the campaign, and the inferences; the rest reuse
them.  Each benchmark prints the paper-shaped artifact it regenerates,
so ``pytest benchmarks/ --benchmark-only -s`` doubles as a results
report.
"""

import pytest

from repro.experiments.context import get_context
from repro.experiments.scale import SMALL


@pytest.fixture(scope="session")
def context():
    ctx = get_context(SMALL)
    # Materialize the shared stages once, outside any timer.
    ctx.internet
    ctx.pipeline_result
    ctx.campaign_result
    ctx.allocation_inferences
    ctx.pool_inferences
    ctx.as_profiles
    return ctx
