"""Figure 11: one EUI-64 IID observed in many ASes (MAC reuse)."""

from repro.experiments import fig11_12


def test_fig11(benchmark, context):
    result = benchmark(fig11_12.run_fig11, context)
    assert result.exhibit_iid is not None
    print("\n" + result.render())
