"""Figure 6: one provider, two allocation sizes (Versatel /56 and /64)."""

from repro.experiments import fig6


def test_fig6(benchmark, context):
    result = benchmark.pedantic(fig6.run, args=(context,), rounds=1, iterations=1)
    assert result.inferred == {56: 56, 64: 64}
    for plen, grid in sorted(result.grids.items()):
        print(
            f"\nVersatel {grid.prefix}: inferred /{result.inferred[plen]} "
            f"(truth /{plen}), {len(grid.distinct_sources())} devices"
        )
