"""Figure 4: per-AS manufacturer homogeneity CDF."""

from repro.experiments import fig4


def test_fig4(benchmark, context):
    result = benchmark(fig4.run, context)
    assert result.report.fraction_above(0.67) > 0.6
    print("\n" + result.render())
