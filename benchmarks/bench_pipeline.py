"""Section 4 headline: the full discovery pipeline, end to end.

This one deliberately re-runs the pipeline (rather than reusing the
shared context's cached result) so the timing covers seed, expansion,
density, and rotation detection together.
"""

from repro.core.pipeline import DiscoveryPipeline, PipelineConfig
from repro.experiments import headline


def test_discovery_pipeline(benchmark, context):
    def run_pipeline():
        pipeline = DiscoveryPipeline(
            context.internet,
            PipelineConfig(
                seed=context.scale.seed, coverage_48s=context.scale.coverage_48s
            ),
        )
        return pipeline.run()

    result = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    summary = result.summary()
    assert summary["rotating_48s"] > 50
    print("\n" + headline.run(context).render())
