"""Figure 9: AS8881 IID trajectories (daily increment modulo the /46)."""

from repro.experiments import fig9


def test_fig9(benchmark, context):
    result = benchmark(fig9.run, context)
    assert all(step == 256 for step in result.modal_increments().values())
    print("\n" + result.render())
