"""Figure 8: distinct /64 prefixes per EUI-64 IID."""

from repro.experiments import fig8


def test_fig8(benchmark, context):
    result = benchmark(fig8.run, context)
    assert result.fraction_multi() > 0.6
    print("\n" + result.render())
