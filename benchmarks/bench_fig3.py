"""Figure 3: per-/48 allocation grids for the three exemplar providers."""

from repro.experiments import fig3


def test_fig3(benchmark, context):
    result = benchmark.pedantic(fig3.run, args=(context,), rounds=1, iterations=1)
    assert result.inferred == result.expected
    for asn, grid in result.grids.items():
        print(
            f"\n{result.names[asn]}: inferred /{result.inferred[asn]} "
            f"(paper /{result.expected[asn]}), "
            f"{len(grid.distinct_sources())} devices, "
            f"{grid.responsive_fraction:.3f} of /64s responsive"
        )
