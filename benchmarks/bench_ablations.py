"""Ablations A1-A3: search-space economics, remediation, blocklists."""

from repro.experiments import ablations


def test_ablation_search_space(benchmark, context):
    result = benchmark(ablations.run_search_ablation, context)
    assert any(b.reduction_factor > 1e4 for b in result.bounds.values())
    print("\n" + result.render())


def test_ablation_remediation(benchmark, context):
    result = benchmark.pedantic(
        ablations.run_remediation_ablation, args=(context,), rounds=1, iterations=1
    )
    assert result.found_after == 0
    print("\n" + result.render())


def test_ablation_blocklist(benchmark, context):
    result = benchmark.pedantic(
        ablations.run_blocklist_ablation, args=(context,), rounds=1, iterations=1
    )
    assert result.outcomes["iid"].block_rate > result.outcomes["prefix"].block_rate
    print("\n" + result.render())
