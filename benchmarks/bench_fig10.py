"""Figure 10: hourly EUI density per /48 of an AS8881 /46 pool."""

from repro.experiments import fig10


def test_fig10(benchmark, context):
    result = benchmark.pedantic(fig10.run, args=(context,), rounds=1, iterations=1)
    assert result.fraction_changes_in_window() > 0.8
    print("\n" + result.render())
