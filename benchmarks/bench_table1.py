"""Table 1: rotating-/48 attribution by ASN and country."""

from repro.experiments import table1


def test_table1(benchmark, context):
    result = benchmark(table1.run, context)
    assert result.top_asns()[0][0] == 8881
    print("\n" + result.render())
