"""Figure 5: inferred allocation-size CDFs (per IID and per AS)."""

from repro.experiments import fig5


def test_fig5(benchmark, context):
    result = benchmark(fig5.run, context)
    assert result.fraction_of_ases_at(56) > 0.4
    print("\n" + result.render())
