"""Figure 13: daily tracking of the random and rotating cohorts."""

from repro.experiments import tracking


def test_fig13a(benchmark, context):
    result = benchmark.pedantic(
        tracking.run_fig13a, args=(context,), rounds=1, iterations=1
    )
    assert result.min_found_per_day() >= result.n_tracked - 2
    print("\n" + result.render_fig13())


def test_fig13b(benchmark, context):
    result = benchmark.pedantic(
        tracking.run_fig13b, args=(context,), rounds=1, iterations=1
    )
    assert result.min_found_per_day() >= result.n_tracked // 2
    print("\n" + result.render_fig13())
