"""Figure 12: IIDs switching between German providers."""

from repro.experiments import fig11_12


def test_fig12(benchmark, context):
    result = benchmark(fig11_12.run_fig12, context)
    assert len(result.german_switches()) >= 1
    print("\n" + result.render())
