"""Section 5 headline: a multi-day measurement campaign.

Times a fresh two-day campaign over the rotation-flagged /48s (the
shared context's full campaign is reused elsewhere; re-timing all of it
would double the suite's runtime for no added signal).
"""

from repro.core.campaign import Campaign, CampaignConfig


def test_campaign_days(benchmark, context):
    prefixes = sorted(
        context.pipeline_result.rotating_48s, key=lambda p: p.network
    )

    def run_two_days():
        config = CampaignConfig(days=2, start_day=30, seed=context.scale.seed)
        return Campaign(context.internet, prefixes, config).run()

    result = benchmark.pedantic(run_two_days, rounds=1, iterations=1)
    summary = result.summary()
    assert summary["unique_eui64_iids"] > 1000
    print(
        f"\n2-day campaign: {summary['probes_sent']} probes, "
        f"{summary['unique_eui64_addresses']} EUI-64 addresses, "
        f"{summary['unique_eui64_iids']} distinct IIDs"
    )
