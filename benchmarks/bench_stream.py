"""Streaming ingestion throughput: batch vs. stream vs. parallel workers.

Three comparisons, all equal-capability (every mode must end with the
same artifacts -- corpus, per-AS inferences, rotation detection):

* **batch vs. single-pass stream** -- the PR-1 bar: one streaming pass
  must at least match store-then-re-walk batch wall-clock;
* **engine-only ingestion** -- the pure hot path, responses/second
  through the engine with no simulator in the loop;
* **parallel scaling** -- the multiprocess backend at N = 1, 2, 4
  workers against the single-process per-response baseline, on the
  same corpus, with the merged result asserted byte-identical.  The
  scaling assertion (>= 2.5x at 4 workers) is enforced where the
  hardware can physically express it (>= 4 CPUs); on smaller hosts the
  measured numbers are still recorded.

Every run emits ``BENCH_stream.json`` at the repo root -- machine-
readable responses/s, wall-clocks, worker counts, and the git revision
-- so the perf trajectory is tracked across PRs.
"""

import gc
import json
import os
import platform
import subprocess
import time
from pathlib import Path

from repro.core.allocation import AllocationInference
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.records import ObservationStore
from repro.core.rotation_detect import detect_rotating_prefixes
from repro.core.rotation_pool import RotationPoolInference
from repro.scan.zmap import ScanResult
from repro.store import ColumnBatch, SqliteBackend, make_backend
from repro.stream import columnar as columnar_kernel
from repro.stream.campaign import StreamingCampaign
from repro.stream.checkpoint import engine_state
from repro.stream.engine import StreamConfig, StreamEngine
from repro.stream.feeds import SightingRecord, sighting_feed
from repro.stream.parallel import ParallelStreamEngine

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=BENCH_JSON.parent, timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record_bench(section: str, payload: dict) -> None:
    """Merge one benchmark's numbers into BENCH_stream.json.

    Sections accumulate only within one revision: numbers recorded at a
    different git rev are dropped rather than re-stamped, so the file
    never attributes stale measurements to the current HEAD.
    """
    rev = _git_rev()
    results = {}
    if BENCH_JSON.exists():
        try:
            results = json.loads(BENCH_JSON.read_text())
        except ValueError:
            results = {}
        if results.get("git_rev") != rev:
            results = {}
    results["git_rev"] = rev
    results["cpu_count"] = os.cpu_count()
    results["python"] = platform.python_version()
    results[section] = payload
    BENCH_JSON.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def _campaign(context, start_day):
    prefixes = sorted(
        context.pipeline_result.rotating_48s, key=lambda p: p.network
    )
    config = CampaignConfig(days=2, start_day=start_day, seed=context.scale.seed)
    return Campaign(context.internet, prefixes, config)


def _batch_postprocess(context, result):
    """The re-walks batch mode needs to match the engine's live state."""
    groups = result.store.group_eui64_by_asn(context.origin_of)
    pools, allocations = {}, {}
    for asn, observations in groups.items():
        if asn == 0:
            continue
        try:
            pools[asn] = RotationPoolInference.from_observations(asn, observations)
            allocations[asn] = AllocationInference.from_observations(asn, observations)
        except ValueError:
            continue
    days = result.store.days()
    snapshots = []
    for day in days:
        snapshot = ScanResult()
        snapshot.responses = result.store.on_day(day)  # ProbeResponse-compatible
        snapshots.append(snapshot)
    detections = [
        detect_rotating_prefixes(a, b) for a, b in zip(snapshots, snapshots[1:])
    ]
    return pools, allocations, detections


def test_stream_vs_batch_wallclock(benchmark, context):
    t0 = time.perf_counter()
    batch_result = _campaign(context, start_day=40).run()
    batch_pools, _allocs, batch_detections = _batch_postprocess(context, batch_result)
    batch_seconds = time.perf_counter() - t0

    def run_streaming():
        streaming = StreamingCampaign(_campaign(context, start_day=40))
        streaming.run()
        return streaming

    streaming = benchmark.pedantic(run_streaming, rounds=1, iterations=1)
    stream_seconds = benchmark.stats.stats.total
    stream_result = streaming.result

    # Equal capability, identical outputs.
    assert stream_result.summary() == batch_result.summary()
    assert list(stream_result.store) == list(batch_result.store)
    live_rotating = streaming.engine.live_detection.rotating_prefixes
    batch_rotating = set().union(*(d.rotating_prefixes for d in batch_detections))
    assert live_rotating == batch_rotating
    for asn, pool in batch_pools.items():
        assert streaming.engine.pool_inference(asn).inferred_plen == pool.inferred_plen

    responses = len(stream_result.store)
    print(
        f"\n2-day campaign, {responses} responses: "
        f"batch (scan+store, then re-walk inferences) {batch_seconds:.2f}s, "
        f"stream (single pass, live inferences) {stream_seconds:.2f}s "
        f"({responses / stream_seconds:,.0f} responses/s end-to-end)"
    )
    record_bench(
        "stream_vs_batch",
        {
            "responses": responses,
            "batch_seconds": round(batch_seconds, 4),
            "stream_seconds": round(stream_seconds, 4),
            "stream_responses_per_s": round(responses / stream_seconds),
        },
    )
    # Single-pass ingestion must at least match batch wall-clock (25%
    # slack absorbs single-round timer noise on a shared machine).
    assert stream_seconds <= batch_seconds * 1.25


def test_engine_ingest_throughput(benchmark, context):
    corpus = list(context.campaign_result.store)

    def ingest_all():
        engine = StreamEngine(
            StreamConfig(num_shards=8, keep_observations=False),
            origin_of=context.origin_of,
        )
        engine.ingest_batch(corpus)
        engine.flush()
        return engine

    engine = benchmark.pedantic(ingest_all, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.total
    assert engine.responses_ingested == len(corpus)
    print(
        f"\nengine-only ingestion: {len(corpus)} responses in {seconds:.3f}s "
        f"({len(corpus) / seconds:,.0f} responses/s), "
        f"{len(engine.asns())} ASes live-inferred"
    )
    record_bench(
        "engine_batch_ingest",
        {
            "responses": len(corpus),
            "seconds": round(seconds, 4),
            "responses_per_s": round(len(corpus) / seconds),
        },
    )


def test_columnar_ingest_throughput(benchmark, context):
    """The columnar hand-off vs the classic fused loop, engine-only.

    The classic mode replays the stored corpus as observation objects
    through ``ingest_batch``; the columnar mode replays it the way the
    redesigned pipeline actually flows -- the store's native
    ``scan_columns`` chunks straight into ``ingest_columns``, no
    per-row object walks or hi/lo splits anywhere.  Both end in
    checkpoint bytes identical to each other (the storage layout and
    kernel are execution details, never a result change).  A parallel
    engine fed the same column batches must merge to the same bytes.
    Without numpy the "columnar" engine *is* the fallback, so the
    section records ``"numpy": false`` and a ~1x ratio instead of
    asserting a speedup.
    """
    corpus = list(context.campaign_result.store)
    config = StreamConfig(num_shards=8, keep_observations=False)
    have_numpy = columnar_kernel.numpy_enabled()
    # The corpus as the columnar store holds it natively: re-reads are
    # list slices, which is what internet-scale replays would see.
    corpus_store = ObservationStore("columnar")
    corpus_store.extend(corpus)
    column_chunks = list(corpus_store.scan_columns())

    def run(mode):
        engine = StreamEngine(config, origin_of=context.origin_of, columnar=mode)
        if mode:
            for batch in column_chunks:
                engine.ingest_columns(batch)
        else:
            engine.ingest_batch(corpus)
        engine.flush()
        return engine

    run(False)  # warm the route caches and allocator
    if have_numpy:
        run(True)  # warm numpy's lazy submodule imports
    # Interleaved min-of-3 rounds: alternating the two modes cancels
    # monotonic host drift (thermal/boost state) that back-to-back
    # blocks would attribute to whichever mode ran later.
    classic_seconds = columnar_seconds = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        classic = run(False)
        classic_seconds = min(classic_seconds, time.perf_counter() - t0)
        t0 = time.perf_counter()
        columnar_engine = run(True)
        columnar_seconds = min(columnar_seconds, time.perf_counter() - t0)
    classic_state = engine_state(classic)
    assert engine_state(columnar_engine) == classic_state  # byte-identical
    # pytest-benchmark's table entry: one representative columnar run
    # (the recorded JSON uses the interleaved minimums above).
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)

    parallel = ParallelStreamEngine(
        config, origin_of=context.origin_of, num_workers=2, columnar=True
    )
    t0 = time.perf_counter()
    if have_numpy:
        for batch in column_chunks:  # zero-copy column dispatch
            parallel.ingest_columns(batch)
    else:
        parallel.ingest_batch(corpus)
    parallel.barrier()
    parallel_ingest_seconds = time.perf_counter() - t0
    merged = parallel.finalize()
    parallel_total_seconds = time.perf_counter() - t0
    assert engine_state(merged) == classic_state  # byte-identical

    speedup = classic_seconds / columnar_seconds
    print(
        f"\ncolumnar ingest on {len(corpus)} responses (numpy={have_numpy}): "
        f"classic {len(corpus) / classic_seconds:,.0f} responses/s, "
        f"columnar {len(corpus) / columnar_seconds:,.0f} responses/s "
        f"({speedup:.2f}x), parallel-columnar x2 ingest "
        f"{len(corpus) / parallel_ingest_seconds:,.0f} responses/s -- "
        f"checkpoint bytes identical in all modes"
    )
    record_bench(
        "columnar_ingest",
        {
            "responses": len(corpus),
            "numpy": have_numpy,
            "classic_seconds": round(classic_seconds, 4),
            "classic_responses_per_s": round(len(corpus) / classic_seconds),
            "columnar_seconds": round(columnar_seconds, 4),
            "columnar_responses_per_s": round(len(corpus) / columnar_seconds),
            "speedup": round(speedup, 2),
            "parallel_columnar": {
                "workers": 2,
                "ingest_responses_per_s": round(
                    len(corpus) / parallel_ingest_seconds
                ),
                "total_responses_per_s": round(len(corpus) / parallel_total_seconds),
            },
        },
    )
    if have_numpy:
        # The committed baseline shows the >= 3x bar on an unloaded
        # host; the in-run floor is 2x so a noisy shared runner flags
        # real regressions without flaking on contention (the CI
        # regression gate tracks the recorded number across revisions).
        assert speedup >= 2.0, f"columnar speedup {speedup:.2f}x < 2.0x"


def test_telemetry_overhead(benchmark, context):
    """Enabled-telemetry cost on the columnar ingest hot path.

    The ``repro.obs`` contract: disabled telemetry is one ``is not
    None`` check per batch (unmeasurable), and *enabled* telemetry --
    registry, pre-bound instrument bundles, an event log -- stays
    within 5% of the untelemetered columnar ingest rate, because every
    instrument update happens at batch/day granularity, never per row.
    Interleaved min-of-5 rounds cancel host drift the same way the
    columnar-vs-classic comparison does.  Checkpoint bytes must be
    identical with telemetry on and off (telemetry is execution state,
    never result state).
    """
    import io

    from repro.obs import Telemetry

    corpus = list(context.campaign_result.store)
    config = StreamConfig(num_shards=8, keep_observations=False)
    corpus_store = ObservationStore("columnar")
    corpus_store.extend(corpus)
    column_chunks = list(corpus_store.scan_columns())

    def run(telemetry):
        engine = StreamEngine(
            config, origin_of=context.origin_of, columnar=True, telemetry=telemetry
        )
        for batch in column_chunks:
            engine.ingest_columns(batch)
        engine.flush()
        return engine

    run(None)  # warm caches and lazy imports
    run(Telemetry(events=io.StringIO()))
    disabled_seconds = enabled_seconds = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        disabled = run(None)
        disabled_seconds = min(disabled_seconds, time.perf_counter() - t0)
        telemetry = Telemetry(events=io.StringIO())
        t0 = time.perf_counter()
        enabled = run(telemetry)
        enabled_seconds = min(enabled_seconds, time.perf_counter() - t0)
    assert engine_state(enabled) == engine_state(disabled)  # byte-identical
    counters = telemetry.snapshot()["counters"]
    assert counters["repro_stream_responses_total"] == len(corpus)
    # pytest-benchmark's table entry: one representative enabled run.
    benchmark.pedantic(
        lambda: run(Telemetry(events=io.StringIO())), rounds=1, iterations=1
    )

    overhead_pct = (enabled_seconds / disabled_seconds - 1.0) * 100.0
    print(
        f"\ntelemetry overhead on {len(corpus)} responses (columnar ingest): "
        f"disabled {len(corpus) / disabled_seconds:,.0f} responses/s, "
        f"enabled {len(corpus) / enabled_seconds:,.0f} responses/s "
        f"({overhead_pct:+.2f}%) -- checkpoint bytes identical"
    )
    record_bench(
        "telemetry_overhead",
        {
            "responses": len(corpus),
            "disabled_seconds": round(disabled_seconds, 4),
            "disabled_responses_per_s": round(len(corpus) / disabled_seconds),
            "enabled_seconds": round(enabled_seconds, 4),
            "enabled_responses_per_s": round(len(corpus) / enabled_seconds),
            "enabled_overhead_pct": round(overhead_pct, 2),
        },
    )
    assert overhead_pct <= 5.0, f"telemetry overhead {overhead_pct:.2f}% > 5%"


def test_store_backend_throughput(benchmark, context):
    """The three StoreBackends on one corpus: append and full-scan rates.

    Each backend ingests the same pre-built column batches through
    ``extend_columns`` and is then scanned end to end through
    ``scan_columns``; all three must serialize byte-identical snapshot
    rows (the cross-backend contract).  The recorded figures feed the
    CI regression gate alongside the engine throughput numbers.
    """
    corpus = list(context.campaign_result.store)
    chunks = [
        ColumnBatch.from_observations(corpus[i : i + 16384])
        for i in range(0, len(corpus), 16384)
    ]
    rows = len(corpus)

    results = {}
    snapshots = {}
    stores = {
        "object": ObservationStore(make_backend("object")),
        "columnar": ObservationStore(make_backend("columnar")),
        "sqlite": ObservationStore(SqliteBackend()),
    }
    for name, store in stores.items():
        # Start each backend's window at a clean gc phase: the held
        # snapshot_rows of earlier backends otherwise make a gen-2 pass
        # land inside (or outside) the timed appends depending on how
        # many allocations the *session* did before this test -- a
        # 2.5x swing that tracks collection order, not backend cost.
        gc.collect()
        t0 = time.perf_counter()
        for batch in chunks:
            store.extend_columns(batch)
        append_seconds = time.perf_counter() - t0
        gc.collect()
        t0 = time.perf_counter()
        scanned = sum(len(batch) for batch in store.scan_columns())
        scan_seconds = time.perf_counter() - t0
        assert scanned == rows
        snapshots[name] = store.snapshot_rows()
        results[name] = {
            "append_seconds": round(append_seconds, 4),
            "append_rows_per_s": round(rows / append_seconds),
            "scan_seconds": round(scan_seconds, 4),
            "scan_rows_per_s": round(rows / scan_seconds),
        }
    assert snapshots["object"] == snapshots["columnar"] == snapshots["sqlite"]
    stores["sqlite"].close()  # drop the temp file

    # pytest-benchmark's table entry: one representative columnar append.
    def columnar_append():
        store = ObservationStore(make_backend("columnar"))
        for batch in chunks:
            store.extend_columns(batch)
        return store

    benchmark.pedantic(columnar_append, rounds=1, iterations=1)

    print(f"\nstore backends on {rows} rows (snapshot rows identical):")
    for name, numbers in results.items():
        print(
            f"  {name}: append {numbers['append_rows_per_s']:,} rows/s, "
            f"scan {numbers['scan_rows_per_s']:,} rows/s"
        )
    record_bench("store_backends", {"rows": rows, **results})


def test_parallel_worker_scaling(benchmark, context):
    """The multiprocess backend vs. the single-process baseline.

    Baseline: the per-response ``StreamEngine.ingest`` loop (the PR-1
    single-process engine path).  Each worker count is measured twice:
    the ingest phase (dispatch + worker apply, barrier-confirmed) and
    end-to-end (plus the merge back into one engine view), and the
    merged result must be byte-identical to the baseline engine.
    """
    corpus = list(context.campaign_result.store)
    config = StreamConfig(num_shards=8, keep_observations=False)

    def run_baseline():
        engine = StreamEngine(config, origin_of=context.origin_of)
        ingest = engine.ingest
        for observation in corpus:
            ingest(observation)
        engine.flush()
        return engine

    baseline = benchmark.pedantic(run_baseline, rounds=1, iterations=1)
    baseline_seconds = benchmark.stats.stats.total
    baseline_state = engine_state(baseline)
    baseline_rps = len(corpus) / baseline_seconds

    results = {}
    for workers in (1, 2, 4):
        parallel = ParallelStreamEngine(
            config, origin_of=context.origin_of, num_workers=workers
        )
        t0 = time.perf_counter()
        parallel.ingest_batch(corpus)
        parallel.barrier()
        ingest_seconds = time.perf_counter() - t0
        merged = parallel.finalize()
        total_seconds = time.perf_counter() - t0
        assert engine_state(merged) == baseline_state  # byte-identical
        results[str(workers)] = {
            "ingest_seconds": round(ingest_seconds, 4),
            "ingest_responses_per_s": round(len(corpus) / ingest_seconds),
            "total_seconds": round(total_seconds, 4),
            "total_responses_per_s": round(len(corpus) / total_seconds),
        }

    speedup = results["4"]["ingest_responses_per_s"] / baseline_rps
    cpus = os.cpu_count() or 1
    print(
        f"\nparallel scaling on {len(corpus)} responses ({cpus} CPUs), "
        f"results byte-identical at every worker count:"
    )
    print(f"  baseline (per-response, single process): {baseline_rps:,.0f} responses/s")
    for workers, numbers in results.items():
        print(
            f"  {workers} worker(s): ingest {numbers['ingest_responses_per_s']:,} "
            f"responses/s, end-to-end incl. merge "
            f"{numbers['total_responses_per_s']:,} responses/s"
        )
    print(f"  4-worker ingest speedup vs baseline: {speedup:.2f}x")
    record_bench(
        "parallel_scaling",
        {
            "responses": len(corpus),
            "baseline_responses_per_s": round(baseline_rps),
            "workers": results,
            "speedup_4_workers_vs_baseline": round(speedup, 2),
        },
    )
    if cpus >= 5:
        # The acceptance bar, where the hardware can express it without
        # oversubscription (dispatcher + 4 workers each need a core):
        # the pipeline sustains >= 2.5x the single-process per-response
        # baseline.  Smaller hosts record the measured number only --
        # on shared 4-vCPU CI runners the assert would flake on
        # contention, not on code.
        assert speedup >= 2.5, f"4-worker speedup {speedup:.2f}x < 2.5x"
    else:
        print(f"  ({cpus} CPU(s): 2.5x scaling assertion needs >= 5, recorded only)")


def test_passive_feed_throughput(benchmark, context):
    """The feed adapter layer vs. raw batch ingestion.

    A passive mirror of the campaign corpus rides through
    ``sighting_feed`` + ``ingest_feed``; equal capability means the
    resulting engine must be byte-identical to the active
    ``ingest_batch`` run, so the measured delta is pure adapter
    overhead (record conversion + the day-order sort).
    """
    corpus = list(context.campaign_result.store)
    config = StreamConfig(num_shards=8, keep_observations=False)
    records = [SightingRecord.from_observation(o) for o in corpus]

    active = StreamEngine(config, origin_of=context.origin_of)
    t0 = time.perf_counter()
    active.ingest_batch(corpus)
    active.flush()
    active_seconds = time.perf_counter() - t0

    def ingest_mirror():
        engine = StreamEngine(config, origin_of=context.origin_of)
        engine.ingest_feed(sighting_feed(records))
        engine.flush()
        return engine

    mirror = benchmark.pedantic(ingest_mirror, rounds=1, iterations=1)
    feed_seconds = benchmark.stats.stats.total
    assert engine_state(mirror) == engine_state(active)  # equal capability

    print(
        f"\npassive mirror feed: {len(corpus)} records in {feed_seconds:.3f}s "
        f"({len(corpus) / feed_seconds:,.0f} records/s) vs. active batch "
        f"{len(corpus) / active_seconds:,.0f} responses/s -- byte-identical state"
    )
    record_bench(
        "passive_feed",
        {
            "responses": len(corpus),
            "seconds": round(feed_seconds, 4),
            "responses_per_s": round(len(corpus) / feed_seconds),
            "active_batch_responses_per_s": round(len(corpus) / active_seconds),
        },
    )


def test_checkpoint_formats(benchmark, context, tmp_path):
    """Binary columnar checkpoints vs. the canonical JSON checkpoint.

    One corpus-keeping engine (store on the columnar backend, the
    layout internet-scale runs use) is checkpointed three ways: the
    canonical JSON text, a binary full segment, and a binary delta
    appended after one /48's worth of fresh responses dirties a single
    shard.  Every restore must land on byte-identical ``engine_state``
    JSON -- the binary format changes the encoding, never the state.
    The recorded figures feed two absolute CI gates
    (``tests/test_bench_schema.py``): binary full save >= 3x the JSON
    save on the committed baseline, and the one-dirty-shard delta <=
    25% of the full segment's bytes.  Interleaved min-of-3 rounds
    cancel host drift the same way the columnar-vs-classic comparison
    does.
    """
    from repro.core.records import ProbeObservation
    from repro.stream.checkpoint import load_engine, save_engine
    from repro.stream.ckptbin import BinaryCheckpointer

    corpus = list(context.campaign_result.store)
    have_numpy = columnar_kernel.numpy_enabled()
    corpus_store = ObservationStore("columnar")
    corpus_store.extend(corpus)
    engine = StreamEngine(
        StreamConfig(num_shards=8, keep_observations=True),
        origin_of=context.origin_of,
        columnar=True,
        store=ObservationStore(make_backend("columnar")),
    )
    for batch in corpus_store.scan_columns():
        engine.ingest_columns(batch)
    engine.flush()

    json_path = tmp_path / "ckpt.json"
    bin_path = tmp_path / "ckpt.bin"
    saver = BinaryCheckpointer(bin_path)
    save_engine(engine, json_path, format="json")  # warm both save paths
    saver.save(engine, mode="full")
    json_save_seconds = binary_save_seconds = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        save_engine(engine, json_path, format="json")
        json_save_seconds = min(json_save_seconds, time.perf_counter() - t0)
        t0 = time.perf_counter()
        full = saver.save(engine, mode="full")
        binary_save_seconds = min(binary_save_seconds, time.perf_counter() - t0)
    # pytest-benchmark's table entry: one representative binary full save.
    benchmark.pedantic(
        lambda: saver.save(engine, mode="full"), rounds=1, iterations=1
    )

    json_load_seconds = binary_load_seconds = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        from_json = load_engine(json_path, origin_of=context.origin_of)
        json_load_seconds = min(json_load_seconds, time.perf_counter() - t0)
        t0 = time.perf_counter()
        from_binary = load_engine(bin_path, origin_of=context.origin_of)
        binary_load_seconds = min(binary_load_seconds, time.perf_counter() - t0)
    oracle = engine_state(engine)
    assert engine_state(from_json) == oracle  # byte-identical
    assert engine_state(from_binary) == oracle  # byte-identical

    # One /48 of fresh same-day responses dirties exactly one shard;
    # the next save appends a delta segment instead of rewriting.
    top48 = (corpus[-1].source >> 80) << 80
    day = engine.current_day
    engine.ingest_batch(
        ProbeObservation(
            day=day,
            t_seconds=day * 86_400.0 + i,
            target=observation.target,
            source=observation.source,
        )
        for i, observation in enumerate(
            [o for o in corpus if o.source >> 80 == top48 >> 80][:256]
        )
    )
    t0 = time.perf_counter()
    delta = saver.save(engine)
    delta_save_seconds = time.perf_counter() - t0
    assert delta.kind == "delta"
    assert engine_state(load_engine(bin_path, origin_of=context.origin_of)) == (
        engine_state(engine)
    )

    speedup = json_save_seconds / binary_save_seconds
    delta_pct = delta.segment_bytes / full.segment_bytes * 100.0
    print(
        f"\ncheckpoint formats on {len(corpus)} stored rows "
        f"(numpy={have_numpy}): json save {json_save_seconds * 1e3:.1f}ms / "
        f"{json_path.stat().st_size:,}B, binary full save "
        f"{binary_save_seconds * 1e3:.1f}ms / {full.segment_bytes:,}B "
        f"({speedup:.2f}x), delta {delta_save_seconds * 1e3:.1f}ms / "
        f"{delta.segment_bytes:,}B ({delta_pct:.1f}% of full, "
        f"{delta.dirty_shards} dirty shard(s)) -- restored state identical"
    )
    record_bench(
        "checkpoint",
        {
            "rows": len(corpus),
            "numpy": have_numpy,
            "json": {
                "save_seconds": round(json_save_seconds, 4),
                "load_seconds": round(json_load_seconds, 4),
                "bytes": json_path.stat().st_size,
            },
            "binary_full": {
                "save_seconds": round(binary_save_seconds, 4),
                "load_seconds": round(binary_load_seconds, 4),
                "bytes": full.segment_bytes,
            },
            "binary_delta": {
                "save_seconds": round(delta_save_seconds, 4),
                "bytes": delta.segment_bytes,
                "dirty_shards": delta.dirty_shards,
            },
            "speedup": round(speedup, 2),
            "delta_bytes_pct_of_full": round(delta_pct, 2),
        },
    )
    # The committed baseline shows the >= 3x bar (and <= 25% delta) on
    # an unloaded host; the in-run floors are looser so a noisy shared
    # runner flags real regressions without flaking on contention.
    assert delta.segment_bytes < full.segment_bytes
    if have_numpy:
        assert speedup >= 2.0, f"binary save speedup {speedup:.2f}x < 2.0x"


def _serve_reader(host, port, paths, stop, versions, think_seconds):
    """One keep-alive query loop: GET each path in rotation, record the
    ``snapshot_version`` every body carries, optionally pacing with a
    think time (the sustained-load shape; ``0`` is the burst shape)."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=10)
    i = 0
    try:
        while not stop.is_set():
            connection.request("GET", paths[i % len(paths)])
            i += 1
            response = connection.getresponse()
            body = json.loads(response.read())
            versions.append(body["snapshot_version"])
            if think_seconds:
                time.sleep(think_seconds)
    except (OSError, http.client.HTTPException):
        pass  # server stopped under us at the end of a rep
    finally:
        connection.close()


def test_serve_queries_under_ingest(benchmark, context):
    """Sustained query service against a live columnar ingest.

    The serve-layer acceptance gate: a tracker daemon answering
    continuous HTTP queries from versioned read snapshots must cost the
    columnar ingest path no more than 15% of its throughput, and every
    response body must carry a monotonically non-decreasing snapshot
    version.  Baseline and served reps are interleaved (min-of-3) with
    the full serving stack up in both -- server bound, publisher
    refreshing per chunk -- so the measured delta is pure query load,
    not serving infrastructure.  The query load is *paced* (two
    keep-alive readers with a think time), because an unpaced reader on
    a small host measures GIL contention, not service cost; the unpaced
    figure is recorded separately as ``burst_queries_per_s`` against
    the final snapshot with ingest idle.
    """
    import threading

    from repro.serve import SnapshotPublisher, TrackerServer

    corpus = list(context.campaign_result.store)
    config = StreamConfig(num_shards=8, keep_observations=False)
    corpus_store = ObservationStore("columnar")
    corpus_store.extend(corpus)
    column_chunks = list(corpus_store.scan_columns())
    watch_iid = next(o.source_iid for o in corpus if o.is_eui64)
    paths = (f"/iid/{watch_iid:#x}", "/rotations", "/stats")
    readers = 2
    think_seconds = 0.02

    def ingest_once(with_load):
        """One fresh served engine over the whole corpus; returns the
        ingest wall-clock and the readers' per-thread version trails."""
        engine = StreamEngine(config, origin_of=context.origin_of, columnar=True)
        engine.watch(watch_iid)
        publisher = SnapshotPublisher(engine, min_interval=0.05)
        server = TrackerServer(publisher)
        server.start()
        stop = threading.Event()
        trails = [[] for _ in range(readers)]
        threads = [
            threading.Thread(
                target=_serve_reader,
                args=(server.host, server.port, paths, stop, trail, think_seconds),
            )
            for trail in trails
        ]
        if with_load:
            for thread in threads:
                thread.start()
        try:
            t0 = time.perf_counter()
            for batch in column_chunks:
                engine.ingest_columns(batch)
                publisher.refresh()
            engine.flush()
            publisher.refresh(force=True)
            seconds = time.perf_counter() - t0
        finally:
            stop.set()
            if with_load:
                for thread in threads:
                    thread.join(timeout=30)
            server.stop()
        return seconds, trails, publisher.version

    ingest_once(False)  # warm caches, lazy imports, and the socket path
    baseline_seconds = served_seconds = float("inf")
    sustained_queries = 0
    sustained_window = 0.0
    final_version = 0
    for _ in range(3):
        seconds, _, _ = ingest_once(False)
        baseline_seconds = min(baseline_seconds, seconds)
        seconds, trails, version = ingest_once(True)
        served_seconds = min(served_seconds, seconds)
        final_version = max(final_version, version)
        sustained_queries += sum(len(trail) for trail in trails)
        sustained_window += seconds
        # The monotone-version contract, per reader connection.
        for trail in trails:
            assert trail == sorted(trail), "snapshot version went backwards"
        assert trails[0], "readers never got a response in the ingest window"
    # pytest-benchmark's table entry: one representative served ingest.
    benchmark.pedantic(lambda: ingest_once(True), rounds=1, iterations=1)

    # Burst: unpaced readers against the final snapshot, ingest idle.
    engine = StreamEngine(config, origin_of=context.origin_of, columnar=True)
    engine.watch(watch_iid)
    for batch in column_chunks:
        engine.ingest_columns(batch)
    engine.flush()
    publisher = SnapshotPublisher(engine)
    server = TrackerServer(publisher)
    server.start()
    stop = threading.Event()
    trails = [[] for _ in range(readers)]
    threads = [
        threading.Thread(
            target=_serve_reader,
            args=(server.host, server.port, paths, stop, trail, 0.0),
        )
        for trail in trails
    ]
    for thread in threads:
        thread.start()
    burst_window = 1.0
    time.sleep(burst_window)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    server.stop()
    burst_queries = sum(len(trail) for trail in trails)

    overhead_pct = (served_seconds / baseline_seconds - 1.0) * 100.0
    sustained_qps = sustained_queries / sustained_window
    burst_qps = burst_queries / burst_window
    print(
        f"\nserve under ingest on {len(corpus)} responses: baseline "
        f"{len(corpus) / baseline_seconds:,.0f} responses/s, with "
        f"{readers} paced readers {len(corpus) / served_seconds:,.0f} "
        f"responses/s ({overhead_pct:+.2f}%), sustained "
        f"{sustained_qps:,.0f} queries/s during ingest, burst "
        f"{burst_qps:,.0f} queries/s idle -- versions monotone, final "
        f"snapshot v{final_version}"
    )
    record_bench(
        "serve_queries",
        {
            "responses": len(corpus),
            "readers": readers,
            "baseline_ingest_seconds": round(baseline_seconds, 4),
            "baseline_ingest_responses_per_s": round(
                len(corpus) / baseline_seconds
            ),
            "served_ingest_seconds": round(served_seconds, 4),
            "served_ingest_responses_per_s": round(len(corpus) / served_seconds),
            "ingest_overhead_pct": round(overhead_pct, 2),
            "sustained_queries": sustained_queries,
            "sustained_queries_per_s": round(sustained_qps, 1),
            "burst_queries_per_s": round(burst_qps, 1),
            "snapshot_versions_monotonic": True,
            "final_snapshot_version": final_version,
        },
    )
    # The acceptance bar: concurrent queries may not cost the columnar
    # ingest path more than 15% (the schema gate re-checks the
    # committed figure).
    assert overhead_pct <= 15.0, f"serve overhead {overhead_pct:.2f}% > 15%"


def test_origin_of_cache_microbench(benchmark, context):
    """The satellite microbenchmark: memoized LPM origin lookups.

    ASN sharding and batch AS-grouping hit ``RoutingTable.origin_of``
    once per response; the /48-keyed cache turns the 128-level bit walk
    into one dict probe for every repeat visitor to a periphery /48.
    """
    rib = context.internet.rib
    sources = [o.source for o in context.campaign_result.store][:50_000]

    def uncached():
        lookup = rib.lookup  # the raw trie walk origin_of memoizes
        for source in sources:
            route = lookup(source)
            _ = route.origin_asn if route else None

    def cached():
        origin_of = rib.origin_of
        for source in sources:
            origin_of(source)

    t0 = time.perf_counter()
    uncached()
    uncached_seconds = time.perf_counter() - t0
    cached()  # warm the cache outside the timer
    benchmark.pedantic(cached, rounds=1, iterations=1)
    cached_seconds = benchmark.stats.stats.total

    speedup = uncached_seconds / cached_seconds
    print(
        f"\norigin_of over {len(sources)} responses: "
        f"uncached trie walk {len(sources) / uncached_seconds:,.0f}/s, "
        f"memoized {len(sources) / cached_seconds:,.0f}/s ({speedup:.1f}x)"
    )
    record_bench(
        "origin_of_cache",
        {
            "lookups": len(sources),
            "uncached_per_s": round(len(sources) / uncached_seconds),
            "cached_per_s": round(len(sources) / cached_seconds),
            "speedup": round(speedup, 2),
        },
    )
    # Sanity: caching must never lose to the bit walk.
    for source in sources[:100]:
        route = rib.lookup(source)
        assert rib.origin_of(source) == (route.origin_asn if route else None)
    assert speedup > 1.0


def test_replication_overhead(benchmark, context, tmp_path):
    """Checkpoint shipping cost with one warm standby attached.

    The replication acceptance gate: streaming every binary segment to
    a live follower may not cost the columnar ingest-and-checkpoint
    path more than 10% -- shipping is a byte-range read plus a bounded
    async enqueue, never a re-serialization.  The follower runs in its
    own process (``bench_repl_follower.py``) at background priority,
    exactly as a real standby does: its segment parsing must not share
    the primary's GIL -- or, on a single-core host, the primary's core
    -- or the bench measures apply cost the primary never pays.
    Baseline and replicated reps are interleaved (min-of-5) with the
    shipper *and* the subscribed follower up in both, so the measured
    delta is pure shipping work, not socket infrastructure.  The gated
    figure is the primary *process's own CPU time* (all threads, the
    shipping writer included; the follower process excluded): on a
    single-core host ``sendall`` backpressure forces the standby's
    recv of every megabyte into the primary's wall-clock -- a cost the
    primary never bears once the standby has its own core or machine,
    which is the only topology a standby makes sense in -- so CPU time
    is the topology-independent primary-side cost.  Wall-clock figures
    are recorded alongside, ungated.  When
    replication is disabled the cost is structurally zero, not
    measured-small: a campaign without a shipper holds ``shipper=None``
    and the checkpoint path performs no replication work at all (no
    listener, no thread, no read-back) -- ``tests/replicate`` pins
    that wiring.  After every replicated rep the follower must
    converge on the exact chain: the digest of its assembled state is
    asserted identical to the file the primary wrote.
    """
    import hashlib
    import sys

    from repro.obs import Telemetry
    from repro.replicate import SegmentShipper
    from repro.stream.ckptbin import BinaryCheckpointer, read_state

    corpus = list(context.campaign_result.store)
    config = StreamConfig(num_shards=8, keep_observations=False)
    corpus_store = ObservationStore("columnar")
    corpus_store.extend(corpus)
    column_chunks = list(corpus_store.scan_columns())
    # Checkpoint a handful of times per run: one full segment then a
    # delta tail.  Real campaigns save once per simulated day, so even
    # this is far hotter than production; hotter still (say every
    # chunk) would measure checkpoint serialization volume, not the
    # per-segment shipping overhead the gate is about.
    every = max(1, len(column_chunks) // 3)

    def run(path, shipper):
        engine = StreamEngine(config, origin_of=context.origin_of, columnar=True)
        saver = BinaryCheckpointer(path)
        t0 = time.perf_counter()
        c0 = time.process_time()
        for i, batch in enumerate(column_chunks):
            engine.ingest_columns(batch)
            if (i + 1) % every == 0:
                engine.flush()
                saver.save(engine)
                if shipper is not None:
                    shipper.ship(saver)
        engine.flush()
        saver.save(engine)
        if shipper is not None:
            shipper.ship(saver)
        return time.perf_counter() - t0, time.process_time() - c0, saver

    telemetry = Telemetry()
    run(tmp_path / "warm.bin", None)  # warm caches and the save path
    baseline_seconds = replicated_seconds = float("inf")
    baseline_cpu = replicated_cpu = float("inf")
    steady_lag = 0.0
    segments_per_run = 0
    follower_script = Path(__file__).resolve().parent / "bench_repl_follower.py"
    with SegmentShipper(telemetry=telemetry) as shipper:
        follower = subprocess.Popen(
            [sys.executable, str(follower_script), shipper.address, shipper.authkey],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=dict(
                os.environ,
                PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
            ),
        )

        def ask(command) -> list[str]:
            follower.stdin.write(json.dumps(command) + "\n")
            follower.stdin.flush()
            return follower.stdout.readline().split(maxsplit=2)

        try:
            # Let the subscription land before any timed rep ships.
            t0 = time.monotonic()
            while shipper.subscribers == 0 and time.monotonic() - t0 < 30:
                time.sleep(0.01)
            assert shipper.subscribers == 1, "follower never subscribed"
            for rep in range(5):
                seconds, cpu, _ = run(tmp_path / f"base{rep}.bin", None)
                baseline_seconds = min(baseline_seconds, seconds)
                baseline_cpu = min(baseline_cpu, cpu)
                path = tmp_path / f"repl{rep}.bin"
                seconds, cpu, saver = run(path, shipper)
                replicated_seconds = min(replicated_seconds, seconds)
                replicated_cpu = min(replicated_cpu, cpu)
                segments_per_run = len(saver.chain)
                # The standby must land on the primary's exact chain.
                tail = saver.chain[-1]
                reply = ask(["EXPECT", tail.base_id, tail.seq])
                assert reply[0] == "CONVERGED", f"follower said {reply!r}"
                expected = hashlib.sha256(
                    json.dumps(read_state(path), sort_keys=True).encode()
                ).hexdigest()
                assert reply[1] == expected, "standby state diverged"
                steady_lag = float(reply[2])
            # pytest-benchmark's table entry: one representative
            # replicated ingest-and-ship run.
            benchmark.pedantic(
                lambda: run(tmp_path / "bench.bin", shipper),
                rounds=1,
                iterations=1,
            )
            reply = ask(["QUIT"])
            assert reply[0] == "STATS", f"follower said {reply!r}"
            applied = json.loads(reply[1])
            follower.wait(timeout=30)
        finally:
            if follower.poll() is None:
                follower.kill()
                follower.wait(timeout=10)

    bytes_shipped = telemetry.snapshot()["counters"][
        "repro_repl_bytes_shipped_total"
    ]
    apply_seconds = applied["sum"]
    apply_segments_per_s = (
        applied["count"] / apply_seconds if apply_seconds > 0 else 0.0
    )

    overhead_pct = (replicated_cpu / baseline_cpu - 1.0) * 100.0
    wall_overhead_pct = (replicated_seconds / baseline_seconds - 1.0) * 100.0
    print(
        f"\nreplication on {len(corpus)} responses, {segments_per_run} "
        f"segments/run: baseline {len(corpus) / baseline_seconds:,.0f} "
        f"responses/s, with one follower "
        f"{len(corpus) / replicated_seconds:,.0f} responses/s "
        f"(primary CPU {overhead_pct:+.2f}%, wall "
        f"{wall_overhead_pct:+.2f}%), follower applied "
        f"{applied['count']} segments at {apply_segments_per_s:,.0f}/s, "
        f"steady lag {steady_lag * 1000:.1f}ms -- standby state identical"
    )
    record_bench(
        "replication",
        {
            "responses": len(corpus),
            "segments_per_run": segments_per_run,
            "baseline_seconds": round(baseline_seconds, 4),
            "baseline_responses_per_s": round(len(corpus) / baseline_seconds),
            "replicated_seconds": round(replicated_seconds, 4),
            "replicated_responses_per_s": round(
                len(corpus) / replicated_seconds
            ),
            "baseline_cpu_seconds": round(baseline_cpu, 4),
            "replicated_cpu_seconds": round(replicated_cpu, 4),
            "shipping_overhead_pct": round(overhead_pct, 2),
            "wall_overhead_pct": round(wall_overhead_pct, 2),
            "bytes_shipped": int(bytes_shipped),
            "follower": {
                "segments_applied": applied["count"],
                "apply_seconds": round(apply_seconds, 4),
                "apply_segments_per_s": round(apply_segments_per_s, 1),
                "steady_lag_seconds": round(steady_lag, 4),
            },
            "disabled_cost": "structural zero: shipper=None skips all work",
            "standby_state_identical": True,
        },
    )
    # The acceptance bar: one warm standby may not cost the primary
    # process more than 10% of its own CPU (the schema gate re-checks
    # the committed figure).
    assert overhead_pct <= 10.0, f"shipping overhead {overhead_pct:.2f}% > 10%"
