"""Streaming ingestion throughput: batch vs. single-pass stream.

The comparison is equal-capability: both modes must end with the same
artifacts -- the observation corpus *and* the attacker's per-AS
inferences (Algorithms 1 and 2) plus day-over-day rotation detection.
Batch mode gets them the paper's way (store everything, then re-walk
the corpus per analysis); streaming mode maintains them incrementally
in the same single pass that fills the store.  The acceptance bar:
single-pass ingestion at least matches the batch wall-clock.

A second benchmark isolates the pure engine hot path (responses/second
through ``StreamEngine.ingest``), which bounds what a faster simulator
or a real packet feed could sustain.
"""

import time

from repro.core.allocation import AllocationInference
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.rotation_detect import detect_rotating_prefixes
from repro.core.rotation_pool import RotationPoolInference
from repro.scan.zmap import ScanResult
from repro.stream.campaign import StreamingCampaign
from repro.stream.engine import StreamConfig, StreamEngine


def _campaign(context, start_day):
    prefixes = sorted(
        context.pipeline_result.rotating_48s, key=lambda p: p.network
    )
    config = CampaignConfig(days=2, start_day=start_day, seed=context.scale.seed)
    return Campaign(context.internet, prefixes, config)


def _batch_postprocess(context, result):
    """The re-walks batch mode needs to match the engine's live state."""
    groups = result.store.group_eui64_by_asn(context.origin_of)
    pools, allocations = {}, {}
    for asn, observations in groups.items():
        if asn == 0:
            continue
        try:
            pools[asn] = RotationPoolInference.from_observations(asn, observations)
            allocations[asn] = AllocationInference.from_observations(asn, observations)
        except ValueError:
            continue
    days = result.store.days()
    snapshots = []
    for day in days:
        snapshot = ScanResult()
        snapshot.responses = result.store.on_day(day)  # ProbeResponse-compatible
        snapshots.append(snapshot)
    detections = [
        detect_rotating_prefixes(a, b) for a, b in zip(snapshots, snapshots[1:])
    ]
    return pools, allocations, detections


def test_stream_vs_batch_wallclock(benchmark, context):
    t0 = time.perf_counter()
    batch_result = _campaign(context, start_day=40).run()
    batch_pools, _allocs, batch_detections = _batch_postprocess(context, batch_result)
    batch_seconds = time.perf_counter() - t0

    def run_streaming():
        streaming = StreamingCampaign(_campaign(context, start_day=40))
        streaming.run()
        return streaming

    streaming = benchmark.pedantic(run_streaming, rounds=1, iterations=1)
    stream_seconds = benchmark.stats.stats.total
    stream_result = streaming.result

    # Equal capability, identical outputs.
    assert stream_result.summary() == batch_result.summary()
    assert list(stream_result.store) == list(batch_result.store)
    live_rotating = streaming.engine.live_detection.rotating_prefixes
    batch_rotating = set().union(*(d.rotating_prefixes for d in batch_detections))
    assert live_rotating == batch_rotating
    for asn, pool in batch_pools.items():
        assert streaming.engine.pool_inference(asn).inferred_plen == pool.inferred_plen

    responses = len(stream_result.store)
    print(
        f"\n2-day campaign, {responses} responses: "
        f"batch (scan+store, then re-walk inferences) {batch_seconds:.2f}s, "
        f"stream (single pass, live inferences) {stream_seconds:.2f}s "
        f"({responses / stream_seconds:,.0f} responses/s end-to-end)"
    )
    # Single-pass ingestion must at least match batch wall-clock (25%
    # slack absorbs single-round timer noise on a shared machine).
    assert stream_seconds <= batch_seconds * 1.25


def test_engine_ingest_throughput(benchmark, context):
    corpus = list(context.campaign_result.store)

    def ingest_all():
        engine = StreamEngine(
            StreamConfig(num_shards=8, keep_observations=False),
            origin_of=context.origin_of,
        )
        engine.ingest_batch(corpus)
        engine.flush()
        return engine

    engine = benchmark.pedantic(ingest_all, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.total
    assert engine.responses_ingested == len(corpus)
    print(
        f"\nengine-only ingestion: {len(corpus)} responses in {seconds:.3f}s "
        f"({len(corpus) / seconds:,.0f} responses/s), "
        f"{len(engine.asns())} ASes live-inferred"
    )
