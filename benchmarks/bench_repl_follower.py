"""The warm standby for ``test_replication_overhead``, as a process.

The replication bench measures what shipping costs the *primary*; the
follower's segment parsing must therefore run outside the primary's
GIL, exactly as a real standby does.  This helper subscribes to the
shipper address given on argv and then speaks a line protocol on
stdio with the bench:

* ``["EXPECT", base_id, seq]`` -- block until the applied position
  reaches ``(base_id, seq)``, then answer ``CONVERGED <sha256> <lag>``
  where the digest is over the assembled state's sorted JSON;
* ``["QUIT"]`` -- answer ``STATS <json>`` (the follower's
  ``repro_repl_apply_seconds`` histogram) and exit.
"""

import hashlib
import json
import os
import sys
import time

from repro.obs import Telemetry
from repro.replicate import ReplicaFollower


def main(argv: list[str]) -> int:
    address, authkey = argv
    # A warm standby is a background process by design: it must never
    # compete with the primary for CPU.  Dropping to the lowest
    # priority makes a single-core CI host model the production
    # topology (standby on its own machine) instead of measuring CPU
    # contention that topology never has; on multi-core hosts this is
    # a no-op (the standby gets an idle core either way).
    try:
        os.nice(19)
    except OSError:
        pass
    telemetry = Telemetry()
    follower = ReplicaFollower(address, authkey=authkey, telemetry=telemetry)
    follower.start()
    try:
        for line in sys.stdin:
            command = json.loads(line)
            if command[0] == "QUIT":
                break
            _, base_id, seq = command
            deadline = time.monotonic() + 60
            while (follower.applied_base_id, follower.applied_seq) != (
                base_id,
                seq,
            ):
                if time.monotonic() > deadline:
                    print("TIMEOUT", flush=True)
                    return 1
                time.sleep(0.01)
            digest = hashlib.sha256(
                json.dumps(follower.state, sort_keys=True).encode()
            ).hexdigest()
            print("CONVERGED", digest, follower.lag_seconds, flush=True)
    finally:
        follower.stop()
    applied = telemetry.snapshot()["histograms"].get(
        "repro_repl_apply_seconds", {"count": 0, "sum": 0.0}
    )
    print(
        "STATS",
        json.dumps(
            {"count": applied["count"], "sum": applied["sum"]},
            separators=(",", ":"),
        ),
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
