"""The Section 6 case study: track ten households across prefix rotations.

Reproduces the paper's end-to-end attack on the full scaled scenario:

1. discover rotating providers (Section 4 pipeline),
2. run a multi-day campaign to learn per-AS allocation and pool sizes,
3. pick ten EUI-64 IIDs (one per country, pathologies excluded), and
4. hunt each daily for a week inside the inferred search bounds.

Run: ``python examples/tracking_case_study.py [tiny|small|default]``
(small takes ~2 minutes; default is the full scaled reproduction;
tiny is the smoke-test size the example tests use).
"""

import sys

from repro.experiments import tracking
from repro.experiments.context import get_context
from repro.experiments.scale import DEFAULT, SMALL, TINY
from repro.util import get_logger

log = get_logger("repro.examples.tracking_case_study")


def main(argv: list[str]) -> int:
    arg = argv[1] if len(argv) > 1 else "small"
    scale = {"default": DEFAULT, "tiny": TINY}.get(arg, SMALL)
    log.info("scale: %s (campaign %d days, tracking %d days)",
             scale.name, scale.campaign_days, scale.tracking_days)

    context = get_context(scale)
    print(f"discovered {len(context.pipeline_result.rotating_48s)} rotating "
          f"/48s across {len(context.as_profiles)} ASes; "
          f"campaign saw {len(context.campaign_store.eui64_iids())} EUI-64 IIDs")

    random_cohort = tracking.run_fig13a(context)
    rotating_cohort = tracking.run_fig13b(context)

    print("\n" + random_cohort.render_fig13())
    print("\n" + rotating_cohort.render_fig13())
    print("\n" + rotating_cohort.render_table2())

    found = rotating_cohort.report.found_per_day()
    print(f"\nrotating cohort: found {min(found.values())}-"
          f"{max(found.values())} of {rotating_cohort.n_tracked} IIDs daily "
          f"(paper: 6-8 of 10) -- EUI-64 CPE defeats prefix rotation.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
