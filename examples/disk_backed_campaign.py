"""Disk-backed campaign: the corpus on sqlite, checkpoints incremental.

The in-memory observation store caps campaign scale at RAM; an
internet-scale run (the paper's real campaign logged 8.3B responses)
needs the corpus on disk.  This example runs a tiny rotating ISP
campaign with the result store held by
:class:`~repro.store.sqlite.SqliteBackend` and shows the redesigned
storage API end to end:

1. the campaign streams scan responses into a sqlite-backed
   :class:`~repro.core.records.ObservationStore`;
2. each JSON checkpoint also commits the sqlite file -- *incrementally*,
   writing only the rows appended since the previous checkpoint;
3. the run is "interrupted", the store file is reattached, and
   ``StreamingCampaign.resume`` verifies the rows already on disk
   instead of replaying them;
4. the finished run's checkpoint is byte-identical to an uninterrupted
   run holding its corpus in memory -- storage layout never leaks into
   results.

Run: ``python examples/disk_backed_campaign.py``
"""

import json
import sys
import tempfile
from pathlib import Path

from repro import (
    Campaign,
    CampaignConfig,
    InternetSpec,
    ObservationStore,
    PoolSpec,
    ProviderSpec,
    SqliteBackend,
    StreamingCampaign,
    build_internet,
)
from repro.simnet.rotation import IncrementRotation
from repro.stream.checkpoint import engine_state


def build_world():
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65010,
                name="Disk DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=11,
    )
    return build_internet(spec)


def build_campaign(internet):
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(internet, prefixes48, CampaignConfig(days=6, start_day=2, seed=11))


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="disk-backed-campaign-"))
    db_path = workdir / "corpus.sqlite"
    checkpoint = workdir / "checkpoint.json"

    # 1. First half of the campaign, corpus on disk.
    store = ObservationStore(SqliteBackend(db_path))
    streaming = StreamingCampaign(
        build_campaign(build_world()),
        checkpoint_path=checkpoint,
        store=store,
    )
    streaming.run(max_days=3)
    backend = store.backend
    print(f"after 3 days: {len(store)} observations in {db_path.name}")
    print(
        f"  checkpoint committed {backend.checkpointed_rows()} rows durably "
        f"({backend.appended_since_checkpoint} pending) -- "
        f"file is {db_path.stat().st_size:,} bytes"
    )

    # 2. "Crash": drop every live object.  Committed rows survive in
    #    the file; nothing else is needed to resume.
    rows_before = backend.checkpointed_rows()
    del streaming, store, backend

    # 3. Reattach the file and resume.  restore verifies the rows the
    #    file already holds and appends only what is missing: nothing.
    reattached = ObservationStore(SqliteBackend(db_path))
    print(f"reattached {db_path.name}: {len(reattached)} rows already on disk")
    assert len(reattached) == rows_before
    resumed = StreamingCampaign.resume(
        build_campaign(build_world()),
        checkpoint,
        store=reattached,
    )
    result = resumed.run()
    delta = reattached.backend.checkpointed_rows() - rows_before
    print(
        f"resumed to completion: {result.days_run} days, "
        f"{len(reattached)} rows ({delta} appended after resume, "
        f"0 replayed)"
    )

    # 4. The uninterrupted reference run, corpus in memory: its final
    #    checkpoint must carry identical state -- backends never leak
    #    into results.  Comparison goes through the format-sniffing
    #    resume path so it holds for the JSON and the binary checkpoint
    #    format alike (binary chains carry random segment ids, so raw
    #    bytes are only comparable within the JSON format).
    reference_checkpoint = workdir / "reference.json"
    reference = StreamingCampaign(
        build_campaign(build_world()), checkpoint_path=reference_checkpoint
    )
    reference.run()

    def canonical_state(path):
        resumed_campaign = StreamingCampaign.resume(
            build_campaign(build_world()), path
        )
        return (
            json.dumps(engine_state(resumed_campaign.engine)),
            json.dumps(resumed_campaign.result.store.snapshot_rows()),
            resumed_campaign.result.days_run,
            resumed_campaign.result.probes_sent,
        )

    identical = canonical_state(checkpoint) == canonical_state(reference_checkpoint)
    print(
        "final checkpoint vs. uninterrupted in-memory run: "
        + ("state-identical" if identical else "DIVERGED")
    )
    if not identical:
        sys.exit(1)

    summary = result.summary()
    print(
        f"campaign summary: {summary['responses']} responses, "
        f"{summary['unique_eui64_addresses']} unique EUI-64 addresses, "
        f"{summary['unique_eui64_iids']} stable IIDs"
    )


if __name__ == "__main__":
    main()
