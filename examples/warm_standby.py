"""Warm-standby failover drill: replicate, SIGKILL, promote, continue.

The replication layer in one file: a primary campaign ships every
binary checkpoint segment to a follower process as it lands on disk;
the follower assembles the chain live (the standby can serve read-only
queries tagged ``role: standby`` the whole time); then the primary is
SIGKILLed mid-campaign -- no cleanup, no final checkpoint -- and the
follower *promotes*: it finalizes its applied chain into a normal
resumable checkpoint and the campaign continues from it.

1. run an uninterrupted reference campaign (the byte-identity oracle),
2. start a primary subprocess with a :class:`repro.SegmentShipper`
   attached and a :class:`repro.ReplicaFollower` subscribed to it,
3. SIGKILL the primary once the follower has applied a few segments,
4. promote the follower and resume the campaign from its checkpoint,
5. self-verify: the promoted file is a byte prefix of the dead
   primary's checkpoint, and the resumed run's final engine state is
   byte-identical to the reference run's.

Run: ``python examples/warm_standby.py [--days N]``
"""

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import (
    Campaign,
    CampaignConfig,
    InternetSpec,
    PoolSpec,
    ProviderSpec,
    ReplicaFollower,
    StreamingCampaign,
)
from repro.simnet.builder import build_internet
from repro.simnet.rotation import IncrementRotation
from repro.stream.checkpoint import engine_state
from repro.util import get_logger

log = get_logger("repro.examples.warm_standby")

AUTHKEY = "warm-standby-drill"

# The primary runs in its own process so the kill is a real SIGKILL
# against a real process -- the same script, re-invoked with "primary".
_PRIMARY_USAGE = "primary <days> <checkpoint-path>"


def build_world(seed: int = 7):
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Example DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=seed,
    )
    return build_internet(spec)


def build_campaign(days: int) -> Campaign:
    internet = build_world()
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(
        internet, prefixes48, CampaignConfig(days=days, start_day=2, seed=7)
    )


def run_primary(days: int, checkpoint: str) -> None:
    """The doomed primary: checkpoint+ship every day, slowly."""
    from repro import SegmentShipper

    shipper = SegmentShipper(authkey=AUTHKEY)
    print(f"ADDRESS {shipper.address}", flush=True)
    campaign = StreamingCampaign(
        build_campaign(days),
        checkpoint_path=checkpoint,
        checkpoint_every=1,
        checkpoint_format="binary",
        shipper=shipper,
    )
    # Slow the days down so the parent reliably kills us mid-campaign.
    campaign.on_day_complete = lambda day: time.sleep(0.3)
    campaign.run()


def main(argv: list[str]) -> int:
    if argv and argv[0] == "primary":
        run_primary(int(argv[1]), argv[2])
        return 0

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scale",
        nargs="?",
        choices=("tiny",),
        help="accepted for the examples smoke harness; the drill's "
        "world is already tiny",
    )
    parser.add_argument("--days", type=int, default=6)
    args = parser.parse_args(argv)

    workdir = Path(tempfile.mkdtemp(prefix="warm_standby_"))
    primary_ckpt = workdir / "primary.ckpt"
    takeover_ckpt = workdir / "takeover.ckpt"

    # 1. The oracle: the same campaign, never interrupted.
    reference = StreamingCampaign(build_campaign(args.days))
    reference.run()

    # 2. Primary subprocess + live follower.
    process = subprocess.Popen(
        [sys.executable, __file__, "primary", str(args.days), str(primary_ckpt)],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    address = line.split()[1]
    print(f"primary pid {process.pid} shipping from {address}")
    follower = ReplicaFollower(address, authkey=AUTHKEY)
    follower.start()
    url = follower.serve()
    print(f"standby serving read-only at {url}")

    # 3. SIGKILL once a few segments have landed on the standby.
    deadline = time.monotonic() + 60
    while follower.applied_seq < 2 and time.monotonic() < deadline:
        time.sleep(0.05)
    if follower.applied_seq < 2:
        print("FAIL: follower never caught up")
        return 1
    process.kill()
    process.wait(timeout=30)
    print(
        f"primary SIGKILLed at standby position "
        f"({follower.applied_base_id}, {follower.applied_seq}), "
        f"lag {follower.lag_seconds * 1000:.1f}ms"
    )

    # 4. Promote and finish the pursuit.  (Byte-compare first: the
    #    resumed run checkpoints back onto the promoted path, rebasing
    #    it with a fresh full segment as it finishes.)
    promoted = follower.promote(takeover_ckpt)
    primary_bytes = primary_ckpt.read_bytes()
    promoted_bytes = promoted.read_bytes()
    prefix_ok = primary_bytes[: len(promoted_bytes)] == promoted_bytes
    resumed = StreamingCampaign.resume(build_campaign(args.days), promoted)
    print(f"promoted; resuming from day {resumed.result.days_run}")
    resumed.run()

    # 5. Self-verify.
    identical = json.dumps(engine_state(resumed.engine)) == json.dumps(
        engine_state(reference.engine)
    )
    finished = resumed.result.days_run == reference.result.days_run
    print(
        f"promoted chain is a byte prefix of the dead primary's file: {prefix_ok}"
    )
    print(f"resumed run finished all {resumed.result.days_run} days: {finished}")
    print(f"final engine state byte-identical to uninterrupted run: {identical}")
    if prefix_ok and identical and finished:
        print("OK")
        return 0
    print("FAIL")
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
