"""Observed campaign: the streaming attack with full telemetry on.

The streaming quickstart shows the live loop; this example shows how to
*watch* it.  A :class:`repro.obs.Telemetry` object threads one metrics
registry and one JSON-lines event log through every layer of a
:class:`~repro.stream.campaign.StreamingCampaign` -- engine ingest
rates, store append/scan latency, feed suppression, checkpoint sizes --
and a live ASCII dashboard renders the registry between days.

1. build a small rotating ISP plus a passive flow tap,
2. run the campaign day by day with telemetry attached, ticking the
   dashboard (stderr) after each day,
3. print the final metric snapshot and campaign stats (stdout),
4. dump the Prometheus exposition and the event log, and show that the
   checkpoint written under telemetry is byte-identical to a blind run.

Run: ``python examples/observed_campaign.py [tiny] [event-log-path]``
"""

import json
import sys
import tempfile
from pathlib import Path

from repro import (
    Campaign,
    CampaignConfig,
    InternetSpec,
    PoolSpec,
    ProviderSpec,
    StreamingCampaign,
    build_internet,
)
from repro.obs import Dashboard, Telemetry, read_events
from repro.simnet.rotation import IncrementRotation
from repro.simnet.vantage import FlowTap
from repro.stream.checkpoint import engine_state
from repro.stream.feeds import tap_feed
from repro.util import get_logger

log = get_logger("repro.examples.observed_campaign")


def build_world(seed: int = 7):
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Example DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=seed,
    )
    return build_internet(spec)


def build_campaign(internet, days: int):
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(
        internet, prefixes48, CampaignConfig(days=days, start_day=2, seed=7)
    )


def build_streaming(internet, days, checkpoint_path=None, telemetry=None):
    tap = FlowTap(internet, 65001, coverage=0.5, sample_rate=0.8, seed=11)
    feed = tap_feed(tap, range(2, 2 + days), dedup_window=4096)
    return StreamingCampaign(
        build_campaign(internet, days),
        passive_feeds=[feed],
        checkpoint_path=checkpoint_path,
        checkpoint_every=2 if checkpoint_path is not None else 0,
        telemetry=telemetry,
    )


def main(argv: list[str]) -> int:
    days = 3 if (len(argv) > 1 and argv[1] == "tiny") else 5
    event_path = Path(argv[2]) if len(argv) > 2 else None

    with tempfile.TemporaryDirectory() as tmp:
        if event_path is None:
            event_path = Path(tmp) / "events.jsonl"
        telemetry = Telemetry(event_path=event_path)

        # 2. Day-by-day run with the dashboard ticking between days.
        internet = build_world()
        campaign = build_streaming(
            internet, days, Path(tmp) / "campaign.json", telemetry
        )
        dashboard = Dashboard(telemetry, total_days=days)
        while not campaign.finished:
            campaign.run(max_days=1)
            dashboard.tick()

        # 3. Final numbers: campaign stats plus the registry snapshot.
        stats = campaign.stats()
        print("campaign stats:")
        for key, value in stats.items():
            print(f"  {key}: {value}")
        snapshot = telemetry.registry.snapshot()
        print(
            f"registry: {len(snapshot['counters'])} counter, "
            f"{len(snapshot['gauges'])} gauge, "
            f"{len(snapshot['histograms'])} histogram series"
        )
        ingest = snapshot["histograms"].get("repro_stream_batch_rows")
        if ingest:
            print(
                f"ingest batches: {ingest['count']} "
                f"({int(ingest['sum'])} rows total)"
            )

        # 4a. Prometheus exposition (first lines only -- it is long).
        exposition = telemetry.prometheus()
        log.info("prometheus exposition: %d lines", len(exposition.splitlines()))
        print("prometheus sample:")
        for line in exposition.splitlines()[:6]:
            print(f"  {line}")

        # 4b. The event log on disk.
        telemetry.close()
        events = read_events(event_path)
        kinds = sorted({e["event"] for e in events})
        print(f"event log: {len(events)} events ({', '.join(kinds)})")

        # 4c. Telemetry never leaks into checkpoints: a blind run of the
        #     same world ends in a byte-identical engine state.
        blind = build_streaming(build_world(), days)
        blind.run()
        identical = json.dumps(engine_state(blind.live_engine)) == json.dumps(
            engine_state(campaign.live_engine)
        )
        print(f"checkpoint byte-identical to untelemetered run: {identical}")
        return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
