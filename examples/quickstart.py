"""Quickstart: build a tiny rotating ISP, probe it, infer its layout.

Demonstrates the paper's core loop in miniature:

1. build one simulated provider with daily prefix rotation,
2. send zmap-style probes into its space,
3. recover each CPE's vendor from the EUI-64 responses,
4. run Algorithm 1 (allocation size) and Algorithm 2 (rotation pool),
5. track one device across a rotation.

Run: ``python examples/quickstart.py``
"""

import random

from repro import (
    AsProfile,
    DeviceTracker,
    InternetSpec,
    ObservationStore,
    OuiRegistry,
    PoolSpec,
    ProviderSpec,
    ScanConfig,
    TrackerConfig,
    Zmap6,
    build_internet,
    eui64_iid_to_mac,
    format_addr,
    format_mac,
)
from repro.core.allocation import AllocationInference
from repro.core.rotation_pool import RotationPoolInference
from repro.scan.targets import one_target_per_subnet
from repro.simnet.rotation import IncrementRotation
from repro.util import get_logger

log = get_logger("repro.examples.quickstart")


def main() -> None:
    # 1. One provider: a /46 rotation pool of /56 delegations, rotating
    #    daily, 60% occupied, all-AVM customer routers.
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Example DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=7,
    )
    internet = build_internet(spec)
    provider = internet.providers[0]
    pool = provider.pools[0]
    log.info("built %s: %d customers", provider.describe(), pool.n_customers)

    # 2. Probe one target per /56 across the pool, daily for four days.
    rng = random.Random(7)
    targets = one_target_per_subnet(pool.prefix, 56, rng)
    scanner = Zmap6(internet, ScanConfig(seed=7))
    store = ObservationStore()
    for day in (0, 1, 2, 3):
        scan = scanner.scan(targets, start_seconds=(day * 24 + 12) * 3600.0)
        store.add_responses(scan.responses, day=day)
        print(f"day {day}: {len(scan.responses)} responses "
              f"from {len(scan.responders())} devices")

    # 3. Vendor recovery from EUI-64 responses.
    registry = OuiRegistry.bundled()
    vendors = {}
    for iid in store.eui64_iids():
        vendor = registry.vendor_of_mac(eui64_iid_to_mac(iid))
        vendors[vendor] = vendors.get(vendor, 0) + 1
    print(f"vendor mix observed: {vendors}")

    # 4. Algorithm 1 on a per-/64 sample, Algorithm 2 on the two days.
    sample = pool.prefix.subnet(0, 52)
    sample_scan = scanner.scan(
        one_target_per_subnet(sample, 64, rng), start_seconds=13 * 3600.0
    )
    sample_store = ObservationStore()
    sample_store.add_responses(sample_scan.responses, day=0)
    allocation = AllocationInference.from_observations(
        provider.asn, sample_store.eui64_only()
    )
    pool_inference = RotationPoolInference.from_observations(
        provider.asn, store.eui64_only()
    )
    print(f"Algorithm 1 inferred allocation: /{allocation.inferred_plen} "
          f"(truth /{pool.delegation_plen})")
    print(f"Algorithm 2 inferred rotation pool: /{pool_inference.inferred_plen} "
          f"(truth /{pool.prefix.plen}; short windows under-measure, "
          f"as the paper notes)")

    # 5. Track one device across rotations using the inferences.  Pick a
    #    reliably-observed CPE (seen on every observation day).
    always_seen = sorted(
        i for i in store.eui64_iids() if len(store.days_of_iid(i)) == 4
    )
    iid = always_seen[len(always_seen) // 2]
    last = max(store.observations_of_iid(iid), key=lambda o: o.t_seconds)
    # Aggressive widening compensates for the under-measured pool (the
    # paper's remedy: "a second scan ... may be necessary").
    tracker = DeviceTracker(
        internet,
        {provider.asn: AsProfile(provider.asn, allocation.inferred_plen,
                                 pool_inference.inferred_plen)},
        TrackerConfig(seed=7, widen_bits=4, max_widenings=2),
    )
    days = [4, 5, 6]
    track = tracker.track(iid, last.source, days=days)
    mac = eui64_iid_to_mac(iid)
    print(f"\ntracking CPE {format_mac(mac)} (IID {iid:#018x}):")
    for outcome in track.outcomes:
        where = format_addr(outcome.source) if outcome.found else "NOT FOUND"
        print(f"  day {outcome.day}: {outcome.probes_sent:4d} probes -> {where}")
    print(f"found on {track.days_found}/{len(days)} days across "
          f"{track.distinct_net64s} distinct /64s -- prefix rotation did "
          f"not hide this household.")


if __name__ == "__main__":
    main()
