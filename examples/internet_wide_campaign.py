"""The Sections 4-5 measurement study: discovery plus a daily campaign.

Reproduces the paper's Internet-wide characterization on the simulated
Internet: the seed/expand/density/rotation pipeline, the daily probing
campaign, and the headline analyses (Table 1, homogeneity, allocation
sizes, rotation pools, per-IID prefix counts, pathologies).

Run: ``python examples/internet_wide_campaign.py [tiny|small|default]``
(tiny is the smoke-test size the example tests use).
"""

import sys

from repro.experiments import fig4, fig5, fig7, fig8, fig11_12, headline, table1
from repro.experiments.context import get_context
from repro.experiments.scale import DEFAULT, SMALL, TINY


def main(argv: list[str]) -> int:
    arg = argv[1] if len(argv) > 1 else "small"
    scale = {"default": DEFAULT, "tiny": TINY}.get(arg, SMALL)
    context = get_context(scale)

    print(headline.run(context).render())
    print("\n" + table1.run(context).render())
    print("\n" + fig4.run(context).render())
    print("\n" + fig5.run(context).render())
    print("\n" + fig7.run(context).render())
    print("\n" + fig8.run(context).render())
    print("\n" + fig11_12.run_fig11(context).render())
    print("\n" + fig11_12.run_fig12(context).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
