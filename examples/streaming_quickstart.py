"""Streaming quickstart: the online adversary, end to end.

The batch quickstart scans, stores, then infers.  This one shows the
same attack as a *live* loop:

1. build a small rotating ISP,
2. run the daily campaign in streaming mode -- every response updates
   the engine's inferences the moment it arrives,
3. watch the rotation-candidate set and per-AS inferences evolve
   day by day,
4. checkpoint mid-campaign, resume from the file, and verify the
   resumed run ends in exactly the same state,
5. hunt a device with the live pursuit tracker, re-anchored for free by
   passive campaign sightings.

Run: ``python examples/streaming_quickstart.py``
"""

import json
import tempfile
from pathlib import Path

from repro import (
    AsProfile,
    Campaign,
    CampaignConfig,
    DeviceTracker,
    InternetSpec,
    LivePursuit,
    PoolSpec,
    Prefix,
    ProviderSpec,
    StreamingCampaign,
    TrackerConfig,
    build_internet,
    format_addr,
)
from repro.simnet.rotation import IncrementRotation
from repro.stream.checkpoint import engine_state


def build_world():
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Example DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=7,
    )
    return build_internet(spec)


def build_campaign(internet):
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(internet, prefixes48, CampaignConfig(days=6, start_day=2, seed=7))


def main() -> None:
    # 1-3. Stream the campaign one day at a time, reading live state
    #      between days (StreamingCampaign.run(max_days=1) per step).
    internet = build_world()
    streaming = StreamingCampaign(build_campaign(internet))
    engine = streaming.engine
    print("day-by-day live state (inferences update as responses arrive):")
    while not streaming.finished:
        streaming.run(max_days=1)
        summary = engine.summary()
        profiles = engine.as_profiles()
        profile = profiles.get(65001)
        inferred = (
            f"alloc /{profile.allocation_plen}, pool /{profile.pool_plen}"
            if profile
            else "(nothing yet)"
        )
        print(
            f"  day {streaming.result.days_run}: "
            f"{summary['responses']} responses, "
            f"{summary['unique_eui64_iids']} IIDs, "
            f"{summary['rotating_48s']} rotating /48s, AS65001 {inferred}"
        )

    # 4. Checkpoint/resume: interrupt a fresh run after 3 days, resume it
    #    from the file, and compare final engine states.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.json"
        interrupted = StreamingCampaign(
            build_campaign(build_world()), checkpoint_path=path
        )
        interrupted.run(max_days=3)
        print(f"\ninterrupted after {interrupted.result.days_run} days; "
              f"checkpoint is {path.stat().st_size:,} bytes")
        resumed = StreamingCampaign.resume(build_campaign(build_world()), path)
        resumed.run()
        identical = json.dumps(engine_state(resumed.engine)) == json.dumps(
            engine_state(streaming.engine)
        )
        print(f"resumed run finished day {resumed.result.days_run}; "
              f"state identical to uninterrupted: {identical}")

    # 5. Live pursuit: hunt one rotating IID after the campaign.  The
    #    allocation size comes from a dedicated single-day per-/64 sample
    #    (Algorithm 1's proper input -- the campaign's own per-/56 grid is
    #    rotation-inflated), streamed through its own engine; the pool
    #    size comes from the campaign engine.
    import random

    from repro.scan.targets import one_target_per_subnet
    from repro.scan.zmap import ScanConfig, Zmap6
    from repro.stream.engine import StreamEngine

    last_day = streaming.campaign.config.start_day + streaming.campaign.config.days - 1
    pool_prefix = internet.providers[0].pools[0].prefix
    sample = Prefix(pool_prefix.network, 52)
    targets = one_target_per_subnet(sample, 64, random.Random(7))
    sample_engine = StreamEngine(origin_of=internet.rib.origin_of)
    scan_stream = Zmap6(internet, ScanConfig(seed=7)).stream(
        targets, start_seconds=(last_day * 24 + 9) * 3600.0
    )
    sample_engine.ingest_responses(scan_stream, day=last_day)
    allocation = sample_engine.allocation_inference(65001, day=last_day)
    pool = engine.pool_inference(65001)
    profiles = {
        65001: AsProfile(
            asn=65001,
            allocation_plen=allocation.inferred_plen,
            pool_plen=min(pool.inferred_plen, allocation.inferred_plen),
        )
    }
    print(
        f"\nAlgorithm 1 (per-/64 sample, single day): /{allocation.inferred_plen}; "
        f"Algorithm 2 (live campaign engine): /{pool.inferred_plen}"
    )

    store = streaming.result.store
    hunted = next(
        iid for iid in sorted(store.eui64_iids())
        if len(store.net64s_of_iid(iid)) > 1
    )
    last = max(store.observations_of_iid(hunted), key=lambda o: o.t_seconds)
    pursuit = LivePursuit(
        DeviceTracker(internet, profiles, TrackerConfig(seed=7)),
        engine=engine,
    )
    pursuit.add_target(hunted, last.source)
    first_day = streaming.campaign.config.start_day + streaming.campaign.config.days
    print(f"\npursuing IID {hunted:#x} from {format_addr(last.source)}:")
    for day in range(first_day, first_day + 3):
        outcome = pursuit.advance(day)[hunted]
        where = format_addr(outcome.source) if outcome.found else "missed"
        print(
            f"  day {day}: {where} after {outcome.probes_sent} probes"
            + (" (changed /64!)" if outcome.changed_prefix else "")
        )


if __name__ == "__main__":
    main()
