"""Tracker-as-a-service: a queryable daemon over a live campaign.

The serve layer in one file: a :class:`repro.TrackerDaemon` runs a
:class:`~repro.stream.campaign.StreamingCampaign` while a threaded
HTTP/JSON API answers queries from versioned read snapshots -- the
freshest sighting of a hunted IID (``/iid/<x>``), the /48s that rotated
at each day's close (``/rotations?day=N``), per-AS inference slices
(``/profiles``), live counters (``/stats``), and the Prometheus
exposition (``/metrics``).  ``POST /shutdown`` stops it gracefully:
final snapshot, final checkpoint, server down.

1. build a small rotating ISP and a streaming campaign over it,
2. run the daemon: ingest day by day, serving queries throughout
   (``--linger`` keeps serving after the campaign finishes -- ``inf``
   means until a ``POST /shutdown`` arrives, the CI smoke shape),
3. self-verify: the checkpoint written under serving must be
   byte-identical to an unserved run's, and must resume to a finished
   campaign.

Run: ``python examples/serve_daemon.py [tiny] [--port N]
[--linger SECONDS|inf] [--checkpoint PATH] [--events PATH]``
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro import (
    Campaign,
    CampaignConfig,
    InternetSpec,
    PoolSpec,
    ProviderSpec,
    StreamingCampaign,
    TrackerDaemon,
)
from repro.obs import Telemetry, read_events
from repro.simnet.builder import build_internet
from repro.simnet.rotation import IncrementRotation
from repro.util import get_logger

log = get_logger("repro.examples.serve_daemon")


def build_world(seed: int = 7):
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Example DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=seed,
    )
    return build_internet(spec)


def build_campaign(internet, days: int) -> Campaign:
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(
        internet, prefixes48, CampaignConfig(days=days, start_day=2, seed=7)
    )


def build_streaming(internet, days, checkpoint_path, telemetry=None):
    return StreamingCampaign(
        build_campaign(internet, days),
        checkpoint_path=checkpoint_path,
        checkpoint_every=1,
        telemetry=telemetry,
    )


def parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scale", nargs="?", default="full", choices=("full", "tiny"),
        help="tiny runs 3 campaign days instead of 5",
    )
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--linger", default=None,
        help="seconds to keep serving after the campaign finishes; "
        "'inf' serves until POST /shutdown",
    )
    parser.add_argument("--checkpoint", type=Path, default=None)
    parser.add_argument("--events", type=Path, default=None)
    args = parser.parse_args(argv[1:])
    if args.linger is not None:
        args.linger = float(args.linger)
    return args


def main(argv: list[str]) -> int:
    args = parse_args(argv)
    days = 3 if args.scale == "tiny" else 5

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = args.checkpoint or Path(tmp) / "served.json"
        events = args.events or Path(tmp) / "events.jsonl"
        telemetry = Telemetry(event_path=events)

        # 2. The daemon: ingest + serve + graceful shutdown.
        streaming = build_streaming(build_world(), days, checkpoint, telemetry)
        daemon = TrackerDaemon(streaming, port=args.port)
        print(f"serving at {daemon.url}", flush=True)
        daemon.run(linger=args.linger)
        telemetry.close()

        print(
            f"campaign finished={streaming.finished} "
            f"days={streaming.result.days_run} "
            f"requests={daemon.server.requests_served()} "
            f"snapshot=v{daemon.publisher.version}"
        )
        kinds = sorted({e["event"] for e in read_events(events)})
        print(f"event log: {', '.join(kinds)}")

        # 3a. The served checkpoint resumes to a finished campaign.
        resumed = StreamingCampaign.resume(build_campaign(build_world(), days), checkpoint)
        resumed_ok = resumed.finished
        print(f"checkpoint resumes finished: {resumed_ok}")

        # 3b. Serving never changed what was checkpointed: an unserved
        #     run of the identical world writes the same bytes.
        unserved = build_streaming(build_world(), days, Path(tmp) / "plain.json")
        unserved.run()
        unserved.checkpoint()  # mirror the daemon's explicit final write
        identical = checkpoint.read_bytes() == (Path(tmp) / "plain.json").read_bytes()
        print(f"served checkpoint byte-identical to unserved run: {identical}")
        return 0 if (streaming.finished and resumed_ok and identical) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
