"""Defensive flip-side (Section 9): abuse blocking under prefix rotation.

The paper closes by noting that IPv4-style address blocklists rot when
client prefixes rotate daily -- and that the same probing technique that
threatens privacy could re-anchor a blocklist to the *device* instead of
the address.  This example quantifies both claims:

* a /64 blocklist learned on day 1 stops almost nothing two rotations
  later,
* an AS-wide block works but takes the whole provider down with it, and
* a CPE-identity (EUI-64) blocklist keeps working across rotations with
  negligible collateral -- at the cost of active probing per flow.

Run: ``python examples/defensive_blocklist.py``
"""

from repro.core.blocklist import AbuseScenario, BlocklistEvaluator, BlockPolicy
from repro.core.correlator import synthesize_flows
from repro.experiments.context import get_context
from repro.experiments.scale import SMALL


def main() -> int:
    context = get_context(SMALL)
    internet = context.internet
    start = context.campaign_config.start_day

    train_days = [start + 1]
    eval_days = [start + 4, start + 5]
    flows = synthesize_flows(
        internet, asn=8881, n_households=24, flows_per_day=3,
        days=train_days + eval_days, seed=42,
    )
    def day_of(flow):
        return int(flow.t_seconds // 86400.0)

    scenario = AbuseScenario(
        training=[f for f in flows if day_of(f) in train_days],
        evaluation=[f for f in flows if day_of(f) in eval_days],
        abusive_households={0, 1, 2, 3, 4, 5},
    )
    print(f"{len(scenario.training)} training flows (abuse labelled), "
          f"{len(scenario.evaluation)} evaluation flows three rotations later\n")

    evaluator = BlocklistEvaluator(internet, block_plen=64, seed=42)
    print(f"{'policy':<8} {'abuse blocked':>14} {'innocent blocked':>17} {'probes':>8}")
    for policy in BlockPolicy:
        outcome = evaluator.evaluate(scenario, policy)
        print(f"{policy.value:<8} {outcome.block_rate:>14.2f} "
              f"{outcome.collateral_rate:>17.2f} {outcome.probes_sent:>8}")

    print("\nPrefix blocklists decay with every rotation; device-identity "
          "blocking survives it -- the paper's tracking primitive cuts "
          "both ways.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
