"""Parallel ingestion quickstart: multiprocess workers, one merged view.

The streaming quickstart shows the online adversary on one core.  This
one shows the same adversary scaled out:

1. build a small rotating ISP and collect a campaign corpus,
2. feed the corpus through a :class:`ParallelStreamEngine` -- N worker
   processes each own a disjoint set of shards, observations travel as
   batched flat tuples, and the dispatcher keeps stream-order state
   (days, watchlist) itself,
3. merge the workers back into a plain :class:`StreamEngine` view and
   verify it is byte-identical to a single-process run over the same
   stream,
4. run a whole :class:`StreamingCampaign` on the parallel backend
   (``workers=2``) and checkpoint/resume it -- checkpoints are the same
   bytes in both modes, so worker counts can change across resumes.

Run: ``python examples/parallel_ingest.py``
"""

import json
import tempfile
import time
from pathlib import Path

from repro import (
    Campaign,
    CampaignConfig,
    InternetSpec,
    ParallelStreamEngine,
    PoolSpec,
    ProviderSpec,
    StreamConfig,
    StreamEngine,
    StreamingCampaign,
    build_internet,
)
from repro.simnet.rotation import IncrementRotation
from repro.stream.checkpoint import engine_state
from repro.util import get_logger

log = get_logger("repro.examples.parallel_ingest")


def build_world():
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Example DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=7,
    )
    return build_internet(spec)


def build_campaign(internet):
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(internet, prefixes48, CampaignConfig(days=6, start_day=2, seed=7))


def main() -> None:
    # 1. One world, one corpus (collected once so both ingestion modes
    #    see the exact same response stream).
    internet = build_world()
    corpus = list(build_campaign(internet).run().store)
    origin_of = internet.rib.origin_of
    config = StreamConfig(num_shards=8, keep_observations=False)
    log.info("corpus: %d responses", len(corpus))

    # 2-3. Parallel ingestion, then the byte-identity check against a
    #      single-process engine.
    single = StreamEngine(config, origin_of=origin_of)
    t0 = time.perf_counter()
    single.ingest_batch(corpus)
    single.flush()
    single_seconds = time.perf_counter() - t0

    parallel = ParallelStreamEngine(config, origin_of=origin_of, num_workers=2)
    t0 = time.perf_counter()
    parallel.ingest_batch(corpus)
    merged = parallel.finalize()
    parallel_seconds = time.perf_counter() - t0

    identical = json.dumps(engine_state(merged)) == json.dumps(engine_state(single))
    print(
        f"single-process: {single_seconds:.2f}s, "
        f"2 workers (incl. merge): {parallel_seconds:.2f}s, "
        f"merged state byte-identical: {identical}"
    )
    profile = merged.as_profiles()[65001]
    print(
        f"live inference from the merged view: AS65001 "
        f"alloc /{profile.allocation_plen}, pool /{profile.pool_plen}, "
        f"{len(merged.live_detection.rotating_prefixes)} rotating /48s"
    )

    # 4. A parallel streaming campaign with checkpoint/resume.  The
    #    checkpoint a parallel run writes is the same file a
    #    single-process run would write, so the resume below could use
    #    any worker count (including none).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.json"
        interrupted = StreamingCampaign(
            build_campaign(build_world()), checkpoint_path=path, workers=2
        )
        interrupted.run(max_days=3)
        print(
            f"\nparallel campaign interrupted after "
            f"{interrupted.result.days_run} days; checkpoint is "
            f"{path.stat().st_size:,} bytes"
        )
        resumed = StreamingCampaign.resume(
            build_campaign(build_world()), path, workers=4
        )
        resumed.run()
        reference = StreamingCampaign(build_campaign(build_world()))
        reference.run()
        identical = json.dumps(engine_state(resumed.engine)) == json.dumps(
            engine_state(reference.engine)
        )
        print(
            f"resumed with 4 workers through day {resumed.result.days_run}; "
            f"final state identical to an uninterrupted single-process "
            f"run: {identical}"
        )


if __name__ == "__main__":
    main()
