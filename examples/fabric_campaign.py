"""Distributed fabric quickstart: socket workers, one merged view.

``parallel_ingest.py`` scales the online adversary across local cores.
This one scales it across *hosts*: the dispatcher binds a TCP master
(:class:`FabricServer`), workers dial in from wherever they run
(``python -m repro.stream.fabric.worker tcp://master:port``), and the
stream travels as length-prefixed CRC-checked frames instead of pipe
writes.  The contract is unchanged -- merged checkpoints are
byte-identical to a serial run -- so this script demonstrates:

1. a socket-transport engine (workers self-spawned here for a
   single-box demo; point real deployments at ``spawn=None`` and
   launch one worker process per box),
2. the byte-identity check against a single-process engine,
3. a whole :class:`StreamingCampaign` configured by one worker-spec
   string -- the deployment knob an operator would put in a config
   file,
4. surviving a worker loss mid-campaign: the master requeues the dead
   worker's journal onto a survivor and the final bytes still match.

Run: ``python examples/fabric_campaign.py``
"""

import json
import os
import signal
import time

from repro import (
    Campaign,
    CampaignConfig,
    InternetSpec,
    ParallelStreamEngine,
    PoolSpec,
    ProviderSpec,
    StreamConfig,
    StreamEngine,
    StreamingCampaign,
    build_internet,
)
from repro.simnet.rotation import IncrementRotation
from repro.stream.checkpoint import engine_state
from repro.stream.fabric import SocketTransport
from repro.util import get_logger

log = get_logger("repro.examples.fabric_campaign")


def build_world():
    spec = InternetSpec(
        providers=(
            ProviderSpec(
                asn=65001,
                name="Example DSL",
                country="DE",
                pools=(PoolSpec(46, 56, 0.60, IncrementRotation(24.0)),),
                vendor_mix=(("AVM", 0.9), ("ZTE", 0.1)),
                eui64_fraction=0.9,
            ),
        ),
        seed=7,
    )
    return build_internet(spec)


def build_campaign(internet):
    pool = internet.providers[0].pools[0]
    prefixes48 = sorted(pool.prefix.subnets(48), key=lambda p: p.network)
    return Campaign(internet, prefixes48, CampaignConfig(days=6, start_day=2, seed=7))


def main() -> None:
    internet = build_world()
    corpus = list(build_campaign(internet).run().store)
    origin_of = internet.rib.origin_of
    config = StreamConfig(num_shards=8, keep_observations=False)
    log.info("corpus: %d responses", len(corpus))

    # 1-2. Socket-transport ingestion.  The master binds an ephemeral
    #      localhost port and spawns its own worker subprocesses (the
    #      handshake authkey travels to them automatically); a
    #      multi-host deployment passes spawn=None, advertises
    #      transport.address, exports the same REPRO_FABRIC_AUTHKEY on
    #      every box, and runs
    #      ``python -m repro.stream.fabric.worker tcp://master:port``
    #      once per box.
    single = StreamEngine(config, origin_of=origin_of)
    single.ingest_batch(corpus)
    single.flush()

    transport = SocketTransport("tcp://127.0.0.1:0", spawn="process")
    print(f"fabric master bound at {transport.address}")
    fabric = ParallelStreamEngine(
        config, origin_of=origin_of, num_workers=2, transport=transport
    )
    t0 = time.perf_counter()
    fabric.ingest_batch(corpus)
    merged = fabric.finalize()
    seconds = time.perf_counter() - t0
    identical = json.dumps(engine_state(merged)) == json.dumps(engine_state(single))
    print(
        f"2 socket workers ingested {len(corpus)} responses in {seconds:.2f}s; "
        f"merged state byte-identical to serial: {identical}"
    )

    # 3. The same thing as one campaign knob: a worker-spec string
    #    carries the endpoint, worker count, spawn mode, and failure
    #    policy.
    campaign = StreamingCampaign(
        build_campaign(build_world()),
        workers="tcp://127.0.0.1:0?workers=2&spawn=process&policy=requeue",
    )
    campaign.run()
    reference = StreamingCampaign(build_campaign(build_world()))
    reference.run()
    identical = json.dumps(engine_state(campaign.engine)) == json.dumps(
        engine_state(reference.engine)
    )
    print(f"campaign over the fabric, byte-identical to serial: {identical}")

    # 4. Fault tolerance: kill a worker mid-stream.  The monitor
    #    declares it dead after the heartbeat timeout, the dispatcher
    #    replays its journal onto the survivor, and the final bytes
    #    still match the serial run.
    transport = SocketTransport(
        "tcp://127.0.0.1:0", spawn="process", heartbeat=0.2, heartbeat_timeout=1.5
    )
    survivor_run = ParallelStreamEngine(
        config, origin_of=origin_of, num_workers=2, transport=transport
    )
    half = len(corpus) // 2
    survivor_run.ingest_batch(corpus[:half])
    survivor_run.barrier()
    victim = transport.channels[1].pid
    print(f"\nkilling worker 1 (pid {victim}) mid-campaign...")
    os.kill(victim, signal.SIGKILL)
    survivor_run.ingest_batch(corpus[half:])
    merged = survivor_run.finalize()
    identical = json.dumps(engine_state(merged)) == json.dumps(engine_state(single))
    print(
        f"requeued onto the survivor; final state byte-identical to "
        f"serial: {identical}"
    )


if __name__ == "__main__":
    main()
