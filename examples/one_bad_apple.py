"""The "one bad apple" scenario: passive feeds defeat prefix rotation.

The other examples attack with probes.  This one shows the same
de-anonymization falling out of *passive* vantage data alone, then
mixes passive and active sources into one stream:

1. build a small daily-rotating ISP whose customers are EUI-64 CPE,
2. stand up a provider-side flow tap (:class:`FlowTap`) covering 60%
   of customers and feed its records -- no probes -- into a
   :class:`StreamEngine` watchlist: the tap links one household's
   rotated prefixes day after day through its stable IID,
3. interleave the tap with a synthetic RFC 4941 client-flow log and a
   live probing campaign via ``MixedFeed`` /
   ``StreamingCampaign(passive_feeds=...)``,
4. verify the feed layer is lossless: a passive feed mirroring an
   active day-stream checkpoints byte-identically to the active run,
5. hunt a device with ``LivePursuit`` re-anchored for free by the tap.

Run: ``python examples/one_bad_apple.py``
"""

import json

from repro import (
    AsProfile,
    Campaign,
    CampaignConfig,
    DeviceTracker,
    FlowTap,
    LivePursuit,
    Prefix,
    StreamConfig,
    StreamEngine,
    StreamingCampaign,
    TrackerConfig,
    format_addr,
)
from repro.core.correlator import synthesize_flows
from repro.experiments.one_bad_apple import ASN, build_world, watch_targets
from repro.stream.checkpoint import engine_state
from repro.stream.feeds import (
    SightingRecord,
    flow_feed,
    sighting_feed,
    tap_feed,
)
from repro.util import get_logger

log = get_logger("repro.examples.one_bad_apple")

DAYS = [3, 4, 5, 6]


def main() -> None:
    internet = build_world(seed=7, n_devices=24)
    targets = watch_targets(internet, anchor_day=DAYS[0] - 1)
    log.info("world: AS%d, %d EUI-64 CPE, daily /56 rotation", ASN, len(targets))

    # 2. Passive-only tracking: the tap sees WAN addresses, never probes.
    tap = FlowTap(internet, ASN, coverage=0.6, sample_rate=0.9, seed=7)
    engine = StreamEngine(StreamConfig(num_shards=4, keep_observations=False))
    for iid, initial in targets.items():
        engine.watch(iid, initial)
    # Narrate one covered device: the first the tap logs on day one.
    iid_mask = (1 << 64) - 1
    bad_apple = tap.sightings_on(DAYS[0])[0][0] & iid_mask
    print(f"\nfollowing IID {bad_apple:#x} through the tap (probes sent: 0):")
    for day in DAYS:
        engine.ingest_feed(sighting_feed(tap.sightings_on(day)))
        sighting = engine.last_sighting(bad_apple)
        marker = "sighted" if sighting.day == day else "quiet  "
        print(f"  day {day}: {marker} last known {format_addr(sighting.source)}")
    detection = engine.flush()
    print(
        f"tap-only engine: {engine.responses_ingested} passive records, "
        f"{len(detection.rotating_prefixes)} rotating /48 flagged, "
        f"{internet.stats.probes} probes sent"
    )

    # 3. Hybrid: a probing campaign with passive feeds riding along.
    campaign = Campaign(
        internet,
        [Prefix.parse("2001:db8::/48")],
        CampaignConfig(days=len(DAYS), start_day=DAYS[0], seed=7),
    )
    flows = synthesize_flows(
        internet, ASN, n_households=6, flows_per_day=2, days=DAYS, seed=7
    )
    streaming = StreamingCampaign(
        campaign,
        passive_feeds=[tap_feed(tap, DAYS), flow_feed(flows)],
    )
    result = streaming.run()
    print(
        f"\nhybrid campaign: {result.probes_sent} probes, "
        f"{len(result.store)} scan responses, "
        f"{streaming.passive_ingested} passive records interleaved; "
        f"engine saw {streaming.engine.summary()['unique_addresses']} addresses "
        f"({result.summary()['unique_addresses']} from scans alone)"
    )

    # 4. Losslessness: a passive mirror of an active stream checkpoints
    #    byte-identically to the active run.
    corpus = list(result.store)
    active = StreamEngine(StreamConfig(num_shards=4))
    active.ingest_batch(corpus)
    active.flush()
    mirror = StreamEngine(StreamConfig(num_shards=4))
    mirror.ingest_feed(
        sighting_feed(SightingRecord.from_observation(o) for o in corpus)
    )
    mirror.flush()
    identical = json.dumps(engine_state(active)) == json.dumps(engine_state(mirror))
    print(f"passive mirror checkpoint byte-identical to active run: {identical}")
    assert identical

    # 5. Live pursuit re-anchored by the tap.
    hunt_world = build_world(seed=7, n_devices=24)
    hunt_tap = FlowTap(hunt_world, ASN, coverage=0.6, sample_rate=0.9, seed=7)
    hunt_engine = StreamEngine(StreamConfig(num_shards=4, keep_observations=False))
    tracker = DeviceTracker(
        hunt_world,
        {ASN: AsProfile(ASN, allocation_plen=56, pool_plen=48)},
        TrackerConfig(seed=7),
    )
    pursuit = LivePursuit(tracker, engine=hunt_engine)
    pursuit.add_target(bad_apple, targets[bad_apple])
    found = sighted = 0
    for day in DAYS:
        # Hunt at 13:00, then fold in the tap's evening records: the
        # passive sighting re-anchors tomorrow's hunt, never today's.
        outcome = pursuit.advance(day)[bad_apple]
        hunt_engine.ingest_feed(sighting_feed(hunt_tap.sightings_on(day)))
        found += outcome.found
        sighted += hunt_engine.last_sighting(bad_apple).day == day
    print(
        f"\nhybrid pursuit of {bad_apple:#x}: hunted {found}/{len(DAYS)} days, "
        f"tap re-anchored {sighted}/{len(DAYS)} days -- rotation defeats "
        f"itself the moment any household device talks."
    )


if __name__ == "__main__":
    main()
